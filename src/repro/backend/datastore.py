"""The data store: an Amazon S3 stand-in (Section 3.4, Appendix A).

U1 stores all file contents in Amazon S3 (us-east) and keeps only metadata in
its own datacenter.  The simulator does not store real bytes; it keeps a
content-addressed index of object sizes, supports the multipart upload API
the uploadjob machinery drives, and tracks the accounting figures the paper
discusses (bytes stored, bytes transferred, per-month storage bill estimate,
savings from file-level deduplication).

Tiered storage (Section 9)
--------------------------
Passing a :class:`~repro.whatif.tiering.TieringPolicy` turns the store into
a two-tier (hot/cold) store: new objects are admitted hot, objects idle for
longer than the policy's age threshold migrate to cold, an optional hot-tier
byte budget evicts (LRU/LFU/size-aware) into cold, and touched cold objects
optionally promote back.  Demotions are *lazily realised* at the object's
next touch (or at :meth:`ObjectStore.finalize_tiers`), which keeps every
tier counter a pure function of the access sequence — the property the
offline what-if simulator (:mod:`repro.whatif.simulator`) relies on to
reproduce a live tiered replay exactly.  All tier/retrieval counters live in
:class:`StorageAccounting` and merge through the existing counter-summary
path, so they stay correct under the sharded replay at any ``--jobs``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.backend.errors import InvalidTransitionError, UnknownContentError
from repro.backend.protocol.operations import UPLOAD_CHUNK_BYTES
from repro.whatif.costs import StorageCostModel
from repro.whatif.tiering import TieringPolicy

__all__ = ["ObjectStore", "MultipartUpload", "StorageAccounting"]


@dataclass
class MultipartUpload:
    """Server-side state of an in-flight S3 multipart upload."""

    multipart_id: str
    key: str
    declared_bytes: int
    received_bytes: int = 0
    parts: list[int] = field(default_factory=list)
    completed: bool = False
    aborted: bool = False

    def add_part(self, size: int) -> int:
        """Register one part; returns its 1-based part number."""
        if self.completed or self.aborted:
            raise InvalidTransitionError("multipart upload already finished")
        if size <= 0:
            raise ValueError("part size must be positive")
        self.parts.append(size)
        self.received_bytes += size
        return len(self.parts)


@dataclass
class StorageAccounting:
    """Running totals kept by the object store."""

    bytes_stored: int = 0
    logical_bytes: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0
    put_requests: int = 0
    get_requests: int = 0
    delete_requests: int = 0
    dedup_hits: int = 0
    # ------------------------------------------------- tiering (Section 9)
    #: Bytes currently resident in the hot tier (0 when tiering is off —
    #: ``bytes_stored - cold_bytes`` is the billable hot occupancy either
    #: way, which keeps the flat-rate cost estimate backward compatible).
    hot_bytes: int = 0
    #: Bytes currently resident in the cold tier.
    cold_bytes: int = 0
    #: Downloads served from the hot tier.
    hot_hits: int = 0
    #: Downloads served from the cold tier (each pays a retrieval).
    cold_hits: int = 0
    #: Bytes read back out of the cold tier.
    cold_retrieved_bytes: int = 0
    #: Cumulative bytes demoted hot -> cold.
    migrated_cold_bytes: int = 0
    #: Cumulative bytes promoted cold -> hot.
    migrated_hot_bytes: int = 0
    #: Number of tier migrations (both directions).
    migrations: int = 0
    # -------------------------------------------- fault injection (faults)
    #: Transfers served by a surviving replica while the content's primary
    #: storage node was down (``StorageNodeOutage`` with failover on).
    failover_reads: int = 0
    #: Bytes those failover transfers moved.
    failover_bytes: int = 0

    @property
    def dedup_saved_bytes(self) -> int:
        """Bytes that deduplication avoided storing."""
        return self.logical_bytes - self.bytes_stored

    @property
    def hot_hit_rate(self) -> float:
        """Fraction of downloads served from the hot tier.

        1.0 when nothing was ever downloaded (or tiering is off): every
        download an untier-ed store serves is by definition hot.
        """
        total = self.hot_hits + self.cold_hits
        return self.hot_hits / total if total else 1.0

    def monthly_cost_estimate(self, cost_model=None) -> float:
        """Monthly storage bill estimate (the paper cites ~$20k/month).

        ``cost_model`` is a :class:`~repro.whatif.costs.StorageCostModel`,
        or a bare hot-tier $/GB-month rate for backward compatibility with
        the historical ``monthly_cost_estimate(0.03)`` signature; ``None``
        uses the default model.  Cold-resident bytes are billed at the cold
        rate, the rest at the hot rate.
        """
        if cost_model is None:
            cost_model = StorageCostModel()
        elif isinstance(cost_model, (int, float)):
            cost_model = StorageCostModel(
                hot_dollars_per_gb_month=float(cost_model))
        return cost_model.storage_monthly_cost(self)

    def merge(self, other: "StorageAccounting") -> None:
        """Fold another accounting (e.g. one replay shard's) into this one."""
        self.bytes_stored += other.bytes_stored
        self.logical_bytes += other.logical_bytes
        self.bytes_uploaded += other.bytes_uploaded
        self.bytes_downloaded += other.bytes_downloaded
        self.put_requests += other.put_requests
        self.get_requests += other.get_requests
        self.delete_requests += other.delete_requests
        self.dedup_hits += other.dedup_hits
        self.hot_bytes += other.hot_bytes
        self.cold_bytes += other.cold_bytes
        self.hot_hits += other.hot_hits
        self.cold_hits += other.cold_hits
        self.cold_retrieved_bytes += other.cold_retrieved_bytes
        self.migrated_cold_bytes += other.migrated_cold_bytes
        self.migrated_hot_bytes += other.migrated_hot_bytes
        self.migrations += other.migrations
        self.failover_reads += other.failover_reads
        self.failover_bytes += other.failover_bytes


class ObjectStore:
    """Content-addressed object store with multipart uploads and refcounts.

    Contents are keyed by their (client-provided SHA-1) hash; multiple nodes
    across users may reference the same content, which is exactly the
    file-level cross-user deduplication U1 applies.  With a
    :class:`~repro.whatif.tiering.TieringPolicy` the store additionally
    tracks hot/cold tier residency per object (see the module docstring);
    the ``now`` arguments of the mutating methods drive the idle clocks and
    are ignored when tiering is off.
    """

    def __init__(self, chunk_bytes: int = UPLOAD_CHUNK_BYTES,
                 tiering: TieringPolicy | None = None):
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if tiering is not None:
            tiering.validate()
        self._chunk_bytes = chunk_bytes
        self._tiering = tiering
        self._objects: dict[str, int] = {}
        self._refcounts: dict[str, int] = {}
        self._multiparts: dict[str, MultipartUpload] = {}
        self._multipart_ids = itertools.count(1)
        self._absorbed_objects = 0
        self.accounting = StorageAccounting()
        # Per-object tier state (only maintained when tiering is on).
        self._cold: set = set()
        self._last_access: dict = {}
        self._access_count: dict = {}
        self._admit_seq: dict = {}
        self._seq = 0
        # Lazy eviction heap of ``(metric, key)`` entries: one is pushed at
        # every metric change of a hot object, and stale entries (metric no
        # longer current, object gone or already cold) are skipped at pop
        # time — amortised O(log n) per access instead of re-sorting every
        # hot object on each overflow.  The metric tuples embed the unique
        # admission sequence, so ordering is total and the heap pops in
        # exactly the order a full eviction sort would produce.
        self._evict_heap: list = []
        if tiering is not None:
            self._eviction_key = {
                "lru": lambda key: (self._last_access[key],
                                    self._admit_seq[key]),
                "lfu": lambda key: (self._access_count[key],
                                    self._last_access[key],
                                    self._admit_seq[key]),
                "size": lambda key: (-self._objects[key],
                                     self._admit_seq[key]),
            }[tiering.eviction]
            self._track_eviction = tiering.hot_capacity_bytes is not None

    # ------------------------------------------------------------- queries
    def __contains__(self, content_hash: str) -> bool:
        return content_hash in self._objects

    def __len__(self) -> int:
        return len(self._objects) + self._absorbed_objects

    @property
    def tiering(self) -> TieringPolicy | None:
        """The tiering policy, or None for the classic single-tier store."""
        return self._tiering

    def absorb_summary(self, n_objects: int,
                       accounting: StorageAccounting) -> None:
        """Fold one replay shard's object-store outcome into this store.

        The sharded replay engine gives every shard its own store (shards own
        disjoint users, so cross-shard state never interacts during a run);
        workers ship back only ``(object count, accounting)`` summaries —
        cheap to pickle — and the cluster-level store absorbs them so
        fleet-wide accounting (bytes stored, dedup hits, tier occupancy,
        cost estimates) keeps working after a sharded replay.
        """
        self._absorbed_objects += n_objects
        self.accounting.merge(accounting)

    def size_of(self, content_hash: str) -> int:
        """Size in bytes of a stored content."""
        try:
            return self._objects[content_hash]
        except KeyError:
            raise UnknownContentError(content_hash) from None

    def refcount(self, content_hash: str) -> int:
        """Number of file nodes referencing a content."""
        return self._refcounts.get(content_hash, 0)

    def is_cold(self, content_hash: str) -> bool:
        """Whether a stored content currently resides in the cold tier."""
        return content_hash in self._cold

    # ---------------------------------------------------------------- tiers
    def _tier_admit(self, key, size: int, now: float) -> None:
        """A freshly stored object enters the hot tier."""
        self.accounting.hot_bytes += size
        self._last_access[key] = now
        self._access_count[key] = 1
        self._seq += 1
        self._admit_seq[key] = self._seq
        if self._track_eviction:
            self._push_eviction(key)
            self._enforce_hot_capacity()

    def _push_eviction(self, key) -> None:
        """Push a hot object's current eviction metric; compact stale debt.

        Every touch leaves the previous entry stale, so the heap is rebuilt
        from the live hot set once it outgrows it ~4x — keeping it O(hot
        objects) instead of O(total accesses).
        """
        heap = self._evict_heap
        hot_count = len(self._objects) - len(self._cold)
        if len(heap) > 4 * hot_count + 64:
            cold = self._cold
            eviction_key = self._eviction_key
            heap[:] = [(eviction_key(k), k) for k in self._objects
                       if k not in cold]
            heapq.heapify(heap)
        else:
            heapq.heappush(heap, (self._eviction_key(key), key))

    def _tier_access(self, key, now: float, download: bool) -> None:
        """Touch an existing object: realise lazy demotion, count the hit,
        optionally promote, refresh the idle clock."""
        policy = self._tiering
        accounting = self.accounting
        size = self._objects[key]
        cold = key in self._cold
        if not cold and now - self._last_access[key] > policy.age_threshold:
            # The object went cold during the idle gap; realise it now.
            self._demote(key, size)
            cold = True
        if download:
            if cold:
                accounting.cold_hits += 1
                accounting.cold_retrieved_bytes += size
            else:
                accounting.hot_hits += 1
        promote = cold and policy.promote_on_access
        if promote:
            self._promote(key, size)
        self._last_access[key] = now
        self._access_count[key] += 1
        if self._track_eviction and (promote or not cold):
            self._push_eviction(key)
            if promote:
                self._enforce_hot_capacity()

    def _tier_remove(self, key, size: int, now: float) -> None:
        """Drop an object's tier state when it is physically deleted."""
        if key not in self._cold \
                and now - self._last_access[key] > self._tiering.age_threshold:
            self._demote(key, size)
        if key in self._cold:
            self.accounting.cold_bytes -= size
            self._cold.discard(key)
        else:
            self.accounting.hot_bytes -= size
        del self._last_access[key]
        del self._access_count[key]
        del self._admit_seq[key]

    def _demote(self, key, size: int) -> None:
        self._cold.add(key)
        accounting = self.accounting
        accounting.hot_bytes -= size
        accounting.cold_bytes += size
        accounting.migrated_cold_bytes += size
        accounting.migrations += 1

    def _promote(self, key, size: int) -> None:
        self._cold.discard(key)
        accounting = self.accounting
        accounting.cold_bytes -= size
        accounting.hot_bytes += size
        accounting.migrated_hot_bytes += size
        accounting.migrations += 1

    def _enforce_hot_capacity(self) -> None:
        """Demote hot objects in eviction order until the budget fits.

        Pops the lazy heap; an entry is acted on only when its recorded
        metric still matches the object's current eviction key (touches and
        promotions push fresh entries, so the current key of every hot
        object is always present).
        """
        capacity = self._tiering.hot_capacity_bytes
        accounting = self.accounting
        heap = self._evict_heap
        objects = self._objects
        cold = self._cold
        while accounting.hot_bytes > capacity and heap:
            metric, key = heapq.heappop(heap)
            if key not in objects or key in cold:
                continue  # deleted or already cold
            if metric != self._eviction_key(key):
                continue  # stale entry; a fresher one is in the heap
            self._demote(key, objects[key])

    def finalize_tiers(self, now: float) -> None:
        """Realise the pending age-demotions at the end of a replay.

        Objects idle for longer than the age threshold at time ``now`` are
        demoted, so the final ``hot_bytes`` / ``cold_bytes`` split reflects
        the whole observation window.  No-op without a tiering policy.
        """
        if self._tiering is None:
            return
        threshold = self._tiering.age_threshold
        last_access = self._last_access
        cold = self._cold
        for key, size in self._objects.items():
            if key not in cold and now - last_access[key] > threshold:
                self._demote(key, size)

    # ---------------------------------------------------------- simple put
    def put(self, content_hash: str, size_bytes: int, now: float = 0.0) -> bool:
        """Store a content in a single request (small files).

        Returns True when bytes actually had to be transferred, False when
        the content already existed (deduplicated upload).
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self.accounting.put_requests += 1
        self.accounting.logical_bytes += size_bytes
        self._refcounts[content_hash] = self._refcounts.get(content_hash, 0) + 1
        if content_hash in self._objects:
            self.accounting.dedup_hits += 1
            if self._tiering is not None:
                self._tier_access(content_hash, now, download=False)
            return False
        self._objects[content_hash] = size_bytes
        self.accounting.bytes_stored += size_bytes
        self.accounting.bytes_uploaded += size_bytes
        if self._tiering is not None:
            self._tier_admit(content_hash, size_bytes, now)
        return True

    def link(self, content_hash: str, now: float = 0.0) -> None:
        """Add a logical reference to an existing content (dedup hit)."""
        if content_hash not in self._objects:
            raise UnknownContentError(content_hash)
        self._refcounts[content_hash] = self._refcounts.get(content_hash, 0) + 1
        self.accounting.logical_bytes += self._objects[content_hash]
        self.accounting.dedup_hits += 1
        if self._tiering is not None:
            self._tier_access(content_hash, now, download=False)

    def get(self, content_hash: str, now: float = 0.0) -> int:
        """Download a content; returns the number of bytes transferred.

        NOTE: the accounting side effects (``get_requests``,
        ``bytes_downloaded``) are inlined in the download fast path of
        ``ApiServerProcess.handle``; keep both in sync.  (That fast path is
        disabled on tiered stores, which need the tier bookkeeping below.)
        """
        size = self.size_of(content_hash)
        self.accounting.get_requests += 1
        self.accounting.bytes_downloaded += size
        if self._tiering is not None:
            self._tier_access(content_hash, now, download=True)
        return size

    def unlink(self, content_hash: str, now: float = 0.0) -> bool:
        """Drop one reference; the object is deleted when unreferenced.

        Returns True when the object was physically removed.
        """
        if content_hash not in self._objects:
            return False
        refs = self._refcounts.get(content_hash, 0)
        self.accounting.delete_requests += 1
        if refs > 1:
            self._refcounts[content_hash] = refs - 1
            self.accounting.logical_bytes -= self._objects[content_hash]
            return False
        size = self._objects.pop(content_hash)
        self._refcounts.pop(content_hash, None)
        self.accounting.bytes_stored -= size
        self.accounting.logical_bytes -= size
        if self._tiering is not None:
            self._tier_remove(content_hash, size, now)
        return True

    # ------------------------------------------------------------ multipart
    @property
    def chunk_bytes(self) -> int:
        """Multipart chunk size (5 MB in U1)."""
        return self._chunk_bytes

    def initiate_multipart(self, key: str, declared_bytes: int) -> str:
        """Start a multipart upload; returns the multipart id."""
        if declared_bytes < 0:
            raise ValueError("declared_bytes must be non-negative")
        multipart_id = f"mp-{next(self._multipart_ids):08d}"
        self._multiparts[multipart_id] = MultipartUpload(
            multipart_id=multipart_id, key=key, declared_bytes=declared_bytes)
        return multipart_id

    def upload_part(self, multipart_id: str, size_bytes: int) -> int:
        """Upload one chunk of a multipart transfer; returns the part number."""
        upload = self._multipart(multipart_id)
        part_number = upload.add_part(size_bytes)
        self.accounting.bytes_uploaded += size_bytes
        return part_number

    def complete_multipart(self, multipart_id: str, content_hash: str,
                           now: float = 0.0) -> int:
        """Finish a multipart upload and commit the content.

        Returns the total stored size.
        """
        upload = self._multipart(multipart_id)
        if upload.completed or upload.aborted:
            raise InvalidTransitionError("multipart upload already finished")
        upload.completed = True
        size = upload.received_bytes
        self.accounting.put_requests += 1
        self.accounting.logical_bytes += size
        self._refcounts[content_hash] = self._refcounts.get(content_hash, 0) + 1
        if content_hash not in self._objects:
            self._objects[content_hash] = size
            self.accounting.bytes_stored += size
            if self._tiering is not None:
                self._tier_admit(content_hash, size, now)
        else:
            self.accounting.dedup_hits += 1
            if self._tiering is not None:
                self._tier_access(content_hash, now, download=False)
        del self._multiparts[multipart_id]
        return size

    def abort_multipart(self, multipart_id: str) -> None:
        """Abort an in-flight multipart upload, discarding received parts."""
        upload = self._multipart(multipart_id)
        upload.aborted = True
        del self._multiparts[multipart_id]

    def pending_multiparts(self) -> int:
        """Number of multipart uploads currently in flight."""
        return len(self._multiparts)

    def _multipart(self, multipart_id: str) -> MultipartUpload:
        try:
            return self._multiparts[multipart_id]
        except KeyError:
            raise UnknownContentError(f"unknown multipart id {multipart_id!r}") from None

    # ----------------------------------------------------------- statistics
    def deduplication_ratio(self) -> float:
        """``1 - unique_bytes / logical_bytes`` (Section 5.3)."""
        if self.accounting.logical_bytes == 0:
            return 0.0
        return 1.0 - self.accounting.bytes_stored / self.accounting.logical_bytes
