"""repro — reproduction of "Dissecting UbuntuOne" (IMC 2015).

This package implements, end to end, the system studied by Gracia-Tinedo et
al. in *Dissecting UbuntuOne: Autopsy of a Global-scale Personal Cloud
Back-end* (IMC 2015):

* :mod:`repro.backend` — a discrete-event simulator of the UbuntuOne (U1)
  back-end: gateway/load balancer, API server processes, RPC database
  workers, a sharded metadata store, an S3-like object store, the OAuth-style
  authentication service, the notification bus and the multipart-upload
  ("uploadjob") state machine.
* :mod:`repro.workload` — a statistical workload generator that reproduces
  the empirical models reported in the paper (diurnal activity, Zipf-skewed
  per-user traffic, power-law inter-operation times, per-extension file
  sizes, file updates, duplication, session lengths, DDoS episodes, ...).
* :mod:`repro.trace` — the trace substrate: record schema, logfile naming,
  CSV serialisation, anonymisation and the dataset container the analyses
  consume.
* :mod:`repro.core` — the analyses themselves, one module per figure/table
  of the paper's evaluation (storage workload, file behaviour, user
  behaviour, back-end performance).

Quickstart::

    from repro import quick_dataset
    from repro.core import summary

    dataset = quick_dataset(users=500, days=3, seed=7)
    print(summary.trace_summary(dataset))
"""

from __future__ import annotations

from repro._version import __version__
from repro.trace.dataset import TraceDataset
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator
from repro.backend.cluster import ClusterConfig, U1Cluster


def quick_dataset(users: int = 200, days: float = 2.0, seed: int = 0,
                  simulate_backend: bool = True) -> TraceDataset:
    """Generate a small synthetic U1 trace in one call.

    This is a convenience wrapper used by the examples and the test-suite:
    it builds a :class:`~repro.workload.config.WorkloadConfig` scaled down to
    ``users`` users over ``days`` days, runs the workload through the
    back-end simulator (unless ``simulate_backend`` is False, in which case
    only client-side records are emitted) and returns the resulting
    :class:`~repro.trace.dataset.TraceDataset`.
    """
    config = WorkloadConfig.scaled(users=users, days=days, seed=seed)
    generator = SyntheticTraceGenerator(config)
    if simulate_backend:
        cluster = U1Cluster(ClusterConfig(seed=seed))
        return cluster.replay_plan(generator.plan())
    return generator.generate()


__all__ = [
    "__version__",
    "TraceDataset",
    "WorkloadConfig",
    "SyntheticTraceGenerator",
    "ClusterConfig",
    "U1Cluster",
    "quick_dataset",
]
