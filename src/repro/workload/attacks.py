"""DDoS / abuse episodes (Section 5.4).

The paper detected three DDoS attacks during the measurement month (Jan 15,
Jan 16, Feb 6).  The attacks shared a single user id and its credentials
across thousands of desktop clients to distribute illegal content through the
U1 infrastructure, multiplying the number of session and authentication
requests per hour by 5-15x and the API storage activity by up to 245x, until
Canonical engineers manually deleted the fraudulent account (activity decays
within about an hour of the response).

:class:`AttackEpisode` generates the corresponding burst of session,
authentication and storage events attributed to a dedicated attacker user id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.trace.records import ApiOperation, NodeKind, VolumeType
from repro.util.units import HOUR
from repro.workload.config import AttackConfig, WorkloadConfig
from repro.workload.events import EventBlock, SessionScript

__all__ = ["AttackEpisode", "build_attack_episodes"]


@dataclass
class AttackEpisode:
    """One concrete DDoS episode bound to an attacker user id."""

    config: AttackConfig
    attacker_user_id: int
    shared_node_id: int
    shared_volume_id: int
    content_hash: str
    start: float
    end: float
    #: Memoised whole-episode draw arrays (see ``generate_sessions``): a
    #: pure function of the spawned attacker stream and the baseline rates,
    #: so every session-range slice reuses them within a process.
    _draws_key: tuple | None = field(default=None, repr=False, compare=False)
    _draws: tuple | None = field(default=None, repr=False, compare=False)

    def planned_size(self, baseline_sessions_per_hour: float,
                     baseline_storage_ops_per_hour: float,
                     max_sessions: int = 5_000,
                     max_storage_ops: int = 30_000) -> tuple[int, int]:
        """``(n_sessions, n_storage_ops)`` this episode will generate.

        Deterministic (no RNG draws), so the global planning pass can
        allocate session-id ranges and shard-assignment weights *before*
        the episode is materialized inside a replay worker.
        ``generate_sessions`` uses the same arithmetic, which is what keeps
        the two in lockstep.
        """
        duration_hours = (self.end - self.start) / HOUR
        n_sessions = int(baseline_sessions_per_hour
                         * self.config.session_amplification * duration_hours)
        n_storage_ops = int(baseline_storage_ops_per_hour
                            * self.config.storage_amplification * duration_hours)
        n_sessions = min(max(n_sessions, 10), max_sessions)
        n_storage_ops = min(max(n_storage_ops, n_sessions), max_storage_ops)
        return n_sessions, n_storage_ops

    def generate_sessions(self, rng: np.random.Generator,
                          baseline_sessions_per_hour: float,
                          baseline_storage_ops_per_hour: float,
                          session_id_start: int,
                          max_sessions: int = 5_000,
                          max_storage_ops: int = 30_000,
                          member_planned_ops: float = -1.0,
                          session_range: tuple[int, int] | None = None
                          ) -> Iterator[SessionScript]:
        """Yield the attack sessions.

        ``baseline_sessions_per_hour`` and ``baseline_storage_ops_per_hour``
        are the legitimate per-hour rates; the attack multiplies them by the
        configured amplification factors for its duration.  Every generated
        session authenticates (hammering the authentication service) and most
        of them download the single shared file (leeching), with a few
        uploads re-seeding content.  ``max_sessions`` / ``max_storage_ops``
        bound the absolute size of an episode so that laptop-scale runs stay
        tractable while the relative spike remains visible.

        ``session_range=(lo, hi)`` yields only sessions ``lo <= i < hi`` of
        the episode.  The whole-episode vectorised draws happen on the
        first call and are memoised on the episode object (they are a pure
        function of the spawned attacker stream and the baselines, so every
        slice of the episode — typically materialized back to back inside
        one replay worker — reuses the same arrays instead of re-drawing
        and re-sorting them), while the per-event script building — the
        actual cost — is restricted to the requested range.  A sharded
        replay can therefore split one botnet flood across workers: the
        attack's thousands of sessions are *concurrent* independent clients
        sharing one account, not a sequential per-user activity stream.
        """
        # The memo key includes the identity of the caller's stream (its
        # SeedSequence entropy/spawn key): a differently-seeded rng must
        # never be served another stream's cached draws.  Streams without a
        # seed sequence (hand-built bit generators) skip the cache.
        seed_seq = getattr(rng.bit_generator, "seed_seq", None)
        if seed_seq is not None:
            rng_key = (getattr(seed_seq, "entropy", None),
                       tuple(getattr(seed_seq, "spawn_key", ()) or ()))
        else:
            rng_key = object()  # unique: never matches a cached key
        cache_key = (rng_key, baseline_sessions_per_hour,
                     baseline_storage_ops_per_hour,
                     max_sessions, max_storage_ops)
        cached = self._draws if self._draws_key == cache_key else None
        if cached is None:
            n_sessions, n_storage_ops = self.planned_size(
                baseline_sessions_per_hour, baseline_storage_ops_per_hour,
                max_sessions=max_sessions, max_storage_ops=max_storage_ops)
            ops_per_session = max(1, n_storage_ops // n_sessions)
            starts = np.sort(rng.uniform(self.start, self.end, size=n_sessions))
            # Vectorised draws: session lengths, per-session op counts, and
            # the inter-op gaps / upload rolls for all sessions at once.
            # The distributions are identical to the historical per-event
            # scalar draws; only the RNG stream consumption order changes.
            lengths = np.minimum(rng.exponential(300.0, size=n_sessions) + 1.0,
                                 self.end - starts)
            op_counts = np.maximum(rng.poisson(ops_per_session,
                                               size=n_sessions), 1)
            total_ops = int(op_counts.sum())
            gaps = rng.exponential(5.0, size=total_ops)
            uploads = rng.random(total_ops) >= 0.95
            offsets = np.concatenate(([0], np.cumsum(op_counts)))
            # Per-session timelines and end-of-session truncation, computed
            # as arrays for the whole episode: a segmented cumulative sum of
            # the gap block, one comparison against the repeated session
            # ends, and — times being increasing within a session — a
            # per-session valid-prefix count instead of a per-event break.
            seg_first = offsets[:-1]
            cum = np.cumsum(gaps)
            base = cum[seg_first] - gaps[seg_first]
            times = np.repeat(starts, op_counts) + cum \
                - np.repeat(base, op_counts)
            session_ends = starts + lengths
            valid = times < np.repeat(session_ends, op_counts)
            n_valid = np.add.reduceat(valid, seg_first).tolist()
            uploads_list = uploads.tolist()
            upload_op = ApiOperation.UPLOAD
            download_op = ApiOperation.DOWNLOAD
            ops_list = [upload_op if u else download_op for u in uploads_list]
            cached = (n_sessions, starts, session_ends, seg_first, n_valid,
                      times.tolist(), uploads_list, ops_list)
            self._draws_key = cache_key
            self._draws = cached
        (n_sessions, starts, session_ends, seg_first, n_valid,
         times_list, uploads_list, ops_list) = cached
        lo, hi = session_range if session_range is not None else (0, n_sessions)
        hi = min(hi, n_sessions)
        attacker = self.attacker_user_id
        node_id = self.shared_node_id
        volume_id = self.shared_volume_id
        file_size = self.config.shared_file_size
        content_hash = self.content_hash
        shared = VolumeType.SHARED
        file_kind = NodeKind.FILE
        for i in range(lo, hi):
            session_id = session_id_start + i + 1
            cursor = int(seg_first[i])
            stop = cursor + int(n_valid[i])
            # The attack is content distribution: overwhelmingly reads of
            # the same shared file, with occasional re-uploads.  Only the
            # event time, operation and upload flag vary, so the block
            # stores everything else as scalar constant columns.
            block = EventBlock(
                times=times_list[cursor:stop],
                operations=ops_list[cursor:stop],
                node_ids=node_id,
                volume_ids=volume_id,
                volume_types=shared,
                node_kinds=file_kind,
                size_bytes=file_size,
                content_hashes=content_hash,
                extensions="avi",
                is_updates=uploads_list[cursor:stop],
                caused_by_attack=True,
            )
            yield SessionScript(
                user_id=attacker,
                session_id=session_id,
                start=float(starts[i]),
                end=float(session_ends[i]),
                caused_by_attack=True,
                member_planned_ops=member_planned_ops,
                block=block,
            )


def build_attack_episodes(config: WorkloadConfig, first_attacker_id: int,
                          first_node_id: int, first_volume_id: int) -> list[AttackEpisode]:
    """Materialise the configured attack episodes.

    Attacker ids / node ids / volume ids are allocated after the legitimate
    population so that they never collide with normal users.
    """
    episodes = []
    for index, attack in enumerate(config.attacks):
        start = attack.start_time(config.start_time)
        end = min(attack.end_time(config.start_time), config.end_time)
        if start >= config.end_time:
            continue
        episodes.append(AttackEpisode(
            config=attack,
            attacker_user_id=first_attacker_id + index,
            shared_node_id=first_node_id + index,
            shared_volume_id=first_volume_id + index,
            content_hash=f"sha1:attack{index:08x}",
            start=start,
            end=end,
        ))
    return episodes
