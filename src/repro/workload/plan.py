"""The workload *plan*: output of the generator's cheap global pass.

PR 3 splits :class:`~repro.workload.generator.SyntheticTraceGenerator` into
two passes:

* a global **planning pass** (:meth:`SyntheticTraceGenerator.plan`) that
  draws everything needing cross-user totals from the one seeded root
  stream — per-user session plans (start/length/active/auth outcome and the
  planned operation count of every active session), global rate
  normalisation for the DDoS episodes, session-id allocation and the shared
  popular-content pool that keeps cross-user dedup alive;
* a per-user **materialization pass** (:mod:`repro.workload.generator`)
  that turns one user's plan into concrete :class:`SessionScript`\\ s,
  drawing only from that user's spawned RNG stream.

Because materialization is a pure function of ``(config, plan entry)``, it
can run *inside* the sharded replay workers — fusing generation into the
replay phase — while producing a workload bit-identical to running the
generator unsharded, for any shard count and any worker count.

The plan also carries the per-member weights (planned operation counts)
that the replay engine's deterministic longest-processing-time shard
assignment is keyed on.  The weights use the truncated-Pareto expected gap
(:meth:`~repro.workload.opmodel.BurstGapSampler.mean_truncated_gap`) to
convert drawn operation counts into expected *realised* counts — the same
truncation the vectorised materializer applies when it cuts a session's
pre-drawn timeline at the session end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.workload.attacks import AttackEpisode
from repro.workload.config import WorkloadConfig
from repro.workload.filemodel import PopularContentPool
from repro.workload.population import User

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.events import SessionScript

__all__ = ["SessionSpec", "UserPlan", "AttackPlan", "WorkloadPlan"]


@dataclass(frozen=True)
class SessionSpec:
    """One planned session with its globally allocated id.

    ``n_ops`` is the planned operation count of an active session (0 for
    cold and auth-failing sessions); it is drawn during planning because
    both the shard-assignment weights and the attack-rate normalisation
    need per-user operation totals before any session is materialized.
    """

    session_id: int
    start: float
    length: float
    active: bool
    auth_fails: bool
    n_ops: int

    @property
    def end(self) -> float:
        """End timestamp of the session."""
        return self.start + self.length


@dataclass(frozen=True)
class UserPlan:
    """All planned sessions of one user, plus the LPT weight."""

    user: User
    sessions: tuple[SessionSpec, ...]
    #: Planned workload weight (operation count plus per-session overhead);
    #: the deterministic longest-processing-time shard assignment keys on
    #: this, so the shard layout depends only on the plan — never on the
    #: worker count.
    planned_ops: float


@dataclass(frozen=True)
class AttackPlan:
    """One *slice* of a DDoS episode, with its plan-time size and ids.

    A botnet flood is thousands of concurrent, mutually independent client
    sessions sharing one stolen account — not a sequential per-user
    activity stream — so the planner cuts each episode into session-range
    slices that are independent plan members.  The LPT shard assignment can
    then spread one flood across shards instead of letting it pin the
    critical path (the reason ``user_id``-keyed assignment bounded
    ``--jobs`` scaling).  Every slice rebuilds the episode's cheap
    whole-episode vectorised draws from the attacker's spawned stream and
    materializes only its ``sessions_slice`` range, so slicing changes
    nothing about the realised episode.
    """

    episode: AttackEpisode
    baseline_sessions_per_hour: float
    baseline_storage_ops_per_hour: float
    #: Last session id allocated *before* the episode (the episode's
    #: sessions occupy ``session_id_start + 1 .. session_id_start +
    #: episode n_sessions``, matching ``AttackEpisode.generate_sessions``).
    session_id_start: int
    #: This slice's ``[lo, hi)`` session-index range within the episode.
    sessions_slice: tuple[int, int]
    #: Planned storage operations of this slice (prorated).
    n_storage_ops: int
    planned_ops: float

    @property
    def user_id(self) -> int:
        """The attacker's dedicated user id."""
        return self.episode.attacker_user_id

    @property
    def n_sessions(self) -> int:
        """Number of sessions in this slice."""
        return self.sessions_slice[1] - self.sessions_slice[0]


@dataclass(frozen=True)
class WorkloadPlan:
    """The full global plan: users, attacks and the shared content pool.

    A plan *member* is one independently materializable unit — a legitimate
    user or an attack episode — indexed ``0 .. n_members - 1`` (users first,
    episodes after).  Members are the granularity of the fused pipeline's
    shard assignment: each replay worker materializes exactly the members
    assigned to its shard, from their own spawned RNG streams.
    """

    config: WorkloadConfig
    users: tuple[UserPlan, ...]
    attacks: tuple[AttackPlan, ...]
    popular_pool: PopularContentPool

    @property
    def n_members(self) -> int:
        """Number of independently materializable plan members."""
        return len(self.users) + len(self.attacks)

    def member_weights(self) -> list[tuple[int, float]]:
        """``(member_index, planned_ops)`` for every member."""
        weights = [(i, p.planned_ops) for i, p in enumerate(self.users)]
        offset = len(self.users)
        weights.extend((offset + i, p.planned_ops)
                       for i, p in enumerate(self.attacks))
        return weights

    def planned_sessions(self) -> int:
        """Total number of planned sessions (legitimate + attack)."""
        return (sum(len(p.sessions) for p in self.users)
                + sum(p.n_sessions for p in self.attacks))

    def materialize(self, members: Sequence[int] | None = None
                    ) -> "list[SessionScript]":
        """Materialize the given members (default: all) into session scripts.

        The result is sorted by the canonical ``(start, session_id)`` order,
        so materializing any partition of the members and concatenating the
        sorted parts in a stable merge reproduces exactly the unsharded
        generator's output.
        """
        from repro.workload.generator import materialize_members
        return materialize_members(self, members)
