"""Configuration of the synthetic workload generator.

Every parameter defaults to the value reported (or implied) by the paper;
:meth:`WorkloadConfig.scaled` produces a laptop-scale configuration that keeps
all the *relative* quantities intact while shrinking the user population and
the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.trace.records import TRACE_EPOCH
from repro.util.units import DAY, HOUR

__all__ = ["WorkloadConfig", "AttackConfig"]


@dataclass(frozen=True)
class AttackConfig:
    """One DDoS episode (Section 5.4).

    The three attacks observed in the trace (Jan 15, Jan 16 and Feb 6) shared
    a single user id and its credentials across thousands of desktop clients
    to distribute illegal content, multiplying session/authentication
    activity by 5-15x and API storage activity by 4.6-245x until engineers
    deleted the fraudulent account.
    """

    start_day: float
    duration_hours: float = 2.0
    session_amplification: float = 10.0
    storage_amplification: float = 50.0
    #: Size of the single shared file the attackers distribute.  The spike in
    #: Fig. 5 is about request counts, not bytes; a moderate size keeps the
    #: laptop-scale traffic totals from being swamped by the attack.
    shared_file_size: int = 10 * 1024 * 1024

    def start_time(self, trace_start: float) -> float:
        """Absolute start timestamp given the trace start."""
        return trace_start + self.start_day * DAY

    def end_time(self, trace_start: float) -> float:
        """Absolute end timestamp given the trace start."""
        return self.start_time(trace_start) + self.duration_hours * HOUR


@dataclass(frozen=True)
class WorkloadConfig:
    """All knobs of the synthetic workload.

    The defaults describe the full-scale U1 deployment (1.29 M users over 30
    days); use :meth:`scaled` for test- and laptop-sized runs.
    """

    # ------------------------------------------------------------ population
    seed: int = 0
    n_users: int = 1_294_794
    duration_days: float = 30.0
    start_time: float = TRACE_EPOCH

    #: User-class mix measured in Section 6.1 (Drago et al. classification).
    occasional_fraction: float = 0.8582
    upload_only_fraction: float = 0.0722
    download_only_fraction: float = 0.0234
    heavy_fraction: float = 0.0462

    #: Lognormal sigma of the per-user activity weight.  sigma = 2.33 yields a
    #: Gini coefficient of ~0.9 for per-user traffic, matching Fig. 7c.
    activity_sigma: float = 2.33

    #: Fraction of users with at least one user-defined volume (58 %) and with
    #: at least one shared volume (1.8 %), Section 6.3.
    udf_user_fraction: float = 0.58
    shared_user_fraction: float = 0.018
    max_udf_volumes: int = 8
    max_shared_volumes: int = 4

    # -------------------------------------------------------------- sessions
    #: Mean number of sessions per user per day, before diurnal modulation.
    sessions_per_user_day: float = 1.1
    #: Fraction of sessions that are shorter than one second (NAT/firewall
    #: connection resets), Section 7.3 reports 32 %.
    short_session_fraction: float = 0.32
    #: Lognormal parameters of the body of the session-length distribution
    #: (median ~25 minutes); 97 % of sessions should stay below 8 hours.
    session_length_median: float = 1500.0
    session_length_sigma: float = 1.6
    #: Maximum session length (two days).
    session_length_cap: float = 2 * DAY
    #: Fraction of sessions that perform data-management operations
    #: ("active sessions"); the paper reports 5.57 %.  The effective value is
    #: modulated per user class.
    active_session_fraction: float = 0.0557
    #: Probability that a user authentication request fails (2.76 %).
    auth_failure_fraction: float = 0.0276

    # ------------------------------------------------------------ operations
    #: Power-law exponent and cut-off of intra-session inter-operation gaps
    #: (Fig. 9 reports alpha = 1.44-1.54).
    burst_alpha: float = 1.5
    burst_theta: float = 1.0
    burst_cap: float = 4 * HOUR
    #: Mean number of storage operations per active session, before the
    #: per-user activity weight is applied (long-tailed; 80 % of active
    #: sessions have at most ~92 operations).
    mean_ops_per_active_session: float = 25.0
    max_ops_per_session: int = 3000

    #: Probability that an upload is an update of an existing file (10.05 %
    #: of uploads; 18.47 % of upload bytes because updates favour larger
    #: frequently-edited files).
    update_fraction: float = 0.10
    #: Probability that a brand-new upload duplicates content already stored
    #: by some user (file-level cross-user dedup ratio of 0.171).
    duplicate_fraction: float = 0.17
    #: Zipf exponent of the popularity of duplicated contents.
    duplicate_zipf_exponent: float = 1.1

    #: Upper clamp on sampled file sizes.  The per-extension lognormal tails
    #: occasionally produce multi-GB outliers that would dominate a
    #: laptop-scale trace; the clamp keeps the ">25 MB dominates traffic"
    #: shape of Fig. 2b without letting a single sample swamp the totals.
    max_file_bytes: int = 512 * 1024 * 1024

    #: Probability that a newly created file is short-lived (deleted within
    #: hours of its creation); Section 5.2 reports that 17.1 % of files are
    #: deleted within 8 hours and 28.9 % within the month.
    short_lived_file_fraction: float = 0.17

    #: Target read/write byte ratio (median R/W ratio of 1.14).
    target_rw_ratio: float = 1.14

    # --------------------------------------------------------------- diurnal
    #: Ratio between the peak (working hours) and the trough (night) of the
    #: hourly activity profile; the paper reports up to 10x for uploads.
    diurnal_peak_to_trough: float = 10.0
    #: Relative activity reduction during weekends (Mondays are ~15 % above
    #: weekend levels for authentications).
    weekend_factor: float = 0.85

    # ---------------------------------------------------------------- attacks
    attacks: tuple[AttackConfig, ...] = field(default_factory=lambda: (
        AttackConfig(start_day=4.0, duration_hours=2.0,
                     session_amplification=5.0, storage_amplification=4.6),
        AttackConfig(start_day=5.0, duration_hours=2.0,
                     session_amplification=15.0, storage_amplification=245.0),
        AttackConfig(start_day=26.0, duration_hours=2.0,
                     session_amplification=8.0, storage_amplification=6.7),
    ))

    # ------------------------------------------------------------------ misc
    #: Number of API machines / processes used when the generator emits
    #: records directly (without the back-end simulator).
    api_machines: int = 6
    processes_per_machine: int = 4
    metadata_shards: int = 10

    # -------------------------------------------------------------- factories
    @classmethod
    def scaled(cls, users: int, days: float, seed: int = 0,
               **overrides) -> "WorkloadConfig":
        """A configuration shrunk to ``users`` users over ``days`` days.

        All relative parameters (class mix, update/duplicate fractions,
        diurnal shape, ...) are kept; the attack schedule is rescaled so that
        the three episodes still fall inside the measurement window.
        """
        if users <= 0:
            raise ValueError("users must be positive")
        if days <= 0:
            raise ValueError("days must be positive")
        base = cls()
        scale = days / base.duration_days
        attacks = tuple(
            replace(attack, start_day=attack.start_day * scale)
            for attack in base.attacks
        )
        config = replace(base, n_users=users, duration_days=days, seed=seed,
                         attacks=attacks)
        if overrides:
            config = replace(config, **overrides)
        return config

    def replace(self, **overrides) -> "WorkloadConfig":
        """Copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`ValueError` when the configuration is inconsistent."""
        class_sum = (self.occasional_fraction + self.upload_only_fraction +
                     self.download_only_fraction + self.heavy_fraction)
        if abs(class_sum - 1.0) > 1e-6:
            raise ValueError(f"user-class fractions must sum to 1, got {class_sum}")
        for name in ("update_fraction", "duplicate_fraction",
                     "short_session_fraction", "active_session_fraction",
                     "auth_failure_fraction", "short_lived_file_fraction",
                     "udf_user_fraction", "shared_user_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if not 1.0 < self.burst_alpha:
            raise ValueError("burst_alpha must exceed 1")
        if self.diurnal_peak_to_trough < 1.0:
            raise ValueError("diurnal_peak_to_trough must be >= 1")

    @property
    def end_time(self) -> float:
        """Absolute end timestamp of the measurement window."""
        return self.start_time + self.duration_days * DAY
