"""File model: extensions, sizes, categories, duplication and updates.

Section 5.3 of the paper characterises the files stored in U1:

* 90 % of files are smaller than 1 MByte, yet a small number of large files
  (> 25 MB) generates most of the traffic (Fig. 2b, Fig. 4b);
* per-extension size distributions are very disparate — compressed/media
  files are much larger than code or documents (Fig. 4b);
* grouping the 55 most popular extensions into 7 categories shows Code as
  the most numerous category while Audio/Video dominates storage
  consumption (Fig. 4c);
* file-level cross-user deduplication would remove ~17 % of the data, with a
  long tail of duplicates per content hash (Fig. 4a);
* ~10 % of uploads are updates of existing files, accounting for ~18.5 % of
  the upload traffic because delta updates are not supported.

:class:`FileModel` samples extensions, sizes and content hashes consistent
with those observations.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rngpool import RngPool
from repro.util.units import KB, MB

__all__ = [
    "ExtensionProfile",
    "FileModel",
    "PopularContentPool",
    "FILE_CATEGORIES",
    "EXTENSION_PROFILES",
    "category_of_extension",
]


@dataclass(frozen=True)
class ExtensionProfile:
    """Statistical profile of one file extension.

    Sizes are lognormal: ``median_size`` is the median in bytes and ``sigma``
    the lognormal shape parameter.  ``popularity`` is the relative frequency
    of the extension among created files; ``compressible`` marks text-like
    contents (the U1 client compresses uploads, and the paper notes that
    compressible types are also the small ones).
    """

    extension: str
    category: str
    popularity: float
    median_size: float
    sigma: float
    compressible: bool = False


#: The 7 file categories of Fig. 4c.
FILE_CATEGORIES: tuple[str, ...] = (
    "Code", "Pictures", "Documents", "Audio/Video", "Binary", "Compressed", "Other",
)


#: Per-extension profiles.  Popularities are normalised at model build time;
#: the absolute values below encode the relative shares that reproduce the
#: Fig. 4c picture (Code the most numerous category, Audio/Video the largest
#: storage share) and the Fig. 4b per-extension size CDFs.
EXTENSION_PROFILES: tuple[ExtensionProfile, ...] = (
    # -- Code ----------------------------------------------------------------
    ExtensionProfile("py", "Code", 6.5, 3 * KB, 1.4, compressible=True),
    ExtensionProfile("c", "Code", 4.0, 6 * KB, 1.4, compressible=True),
    ExtensionProfile("h", "Code", 3.0, 2 * KB, 1.2, compressible=True),
    ExtensionProfile("js", "Code", 4.0, 8 * KB, 1.5, compressible=True),
    ExtensionProfile("php", "Code", 3.5, 6 * KB, 1.4, compressible=True),
    ExtensionProfile("java", "Code", 4.0, 5 * KB, 1.3, compressible=True),
    ExtensionProfile("html", "Code", 3.0, 10 * KB, 1.6, compressible=True),
    ExtensionProfile("css", "Code", 2.0, 6 * KB, 1.4, compressible=True),
    ExtensionProfile("xml", "Code", 2.5, 12 * KB, 1.8, compressible=True),
    # -- Pictures ------------------------------------------------------------
    ExtensionProfile("jpg", "Pictures", 9.0, 350 * KB, 1.2),
    ExtensionProfile("png", "Pictures", 6.0, 120 * KB, 1.5),
    ExtensionProfile("gif", "Pictures", 2.0, 40 * KB, 1.4),
    ExtensionProfile("svg", "Pictures", 1.0, 20 * KB, 1.5, compressible=True),
    # -- Documents -----------------------------------------------------------
    ExtensionProfile("pdf", "Documents", 3.5, 250 * KB, 1.6),
    ExtensionProfile("txt", "Documents", 4.0, 4 * KB, 1.8, compressible=True),
    ExtensionProfile("doc", "Documents", 2.0, 90 * KB, 1.3, compressible=True),
    ExtensionProfile("odt", "Documents", 1.5, 40 * KB, 1.3),
    ExtensionProfile("xls", "Documents", 1.0, 60 * KB, 1.4, compressible=True),
    ExtensionProfile("tex", "Documents", 1.0, 8 * KB, 1.5, compressible=True),
    # -- Audio/Video ---------------------------------------------------------
    ExtensionProfile("mp3", "Audio/Video", 3.0, 4.2 * MB, 0.7),
    ExtensionProfile("ogg", "Audio/Video", 1.0, 3.5 * MB, 0.8),
    ExtensionProfile("wav", "Audio/Video", 0.4, 12 * MB, 0.9),
    ExtensionProfile("avi", "Audio/Video", 0.4, 90 * MB, 1.0),
    ExtensionProfile("mp4", "Audio/Video", 0.6, 45 * MB, 1.1),
    # -- Binary --------------------------------------------------------------
    ExtensionProfile("o", "Binary", 7.0, 25 * KB, 1.5),
    ExtensionProfile("so", "Binary", 2.0, 120 * KB, 1.6),
    ExtensionProfile("jar", "Binary", 1.5, 700 * KB, 1.4),
    ExtensionProfile("msf", "Binary", 1.5, 40 * KB, 1.5),
    ExtensionProfile("pyc", "Binary", 3.0, 9 * KB, 1.3),
    ExtensionProfile("db", "Binary", 1.0, 300 * KB, 1.9),
    # -- Compressed ----------------------------------------------------------
    ExtensionProfile("zip", "Compressed", 1.2, 2.5 * MB, 1.8),
    ExtensionProfile("gz", "Compressed", 1.2, 1.5 * MB, 1.9),
    ExtensionProfile("tar", "Compressed", 0.5, 6 * MB, 1.7),
    ExtensionProfile("rar", "Compressed", 0.4, 8 * MB, 1.6),
    # -- Other ---------------------------------------------------------------
    ExtensionProfile("", "Other", 3.0, 15 * KB, 2.0),
    ExtensionProfile("bak", "Other", 1.0, 30 * KB, 1.9),
    ExtensionProfile("log", "Other", 1.5, 50 * KB, 2.0, compressible=True),
)


_CATEGORY_BY_EXTENSION = {p.extension: p.category for p in EXTENSION_PROFILES}


def category_of_extension(extension: str) -> str:
    """Map an extension to one of the 7 categories (unknown -> Other)."""
    return _CATEGORY_BY_EXTENSION.get(extension.lower().lstrip("."), "Other")


#: Memoised derived tables per profile sequence: (profiles list, normalised
#: probabilities, cumulative popularity floats, small-song profiles, plus the
#: array mirrors the block sampler uses: cumulative ndarray, lognormal mu and
#: sigma per profile, extension strings per profile).
_PROFILE_TABLES: dict[tuple, tuple] = {}

#: One-element cache holding the derived tables of the *default* profile
#: sequence (see the identity fast path in :func:`_profile_tables`).
_DEFAULT_TABLES: list[tuple] = []


def _profile_tables(profiles: tuple) -> tuple:
    # Identity fast path: hashing the key tuple means hashing every frozen
    # ExtensionProfile in it, which at one FileModel per user adds up.
    # ``tuple(EXTENSION_PROFILES) is EXTENSION_PROFILES``, so the default
    # table — by far the common case — hits this without any hashing.
    if profiles is EXTENSION_PROFILES and _DEFAULT_TABLES:
        return _DEFAULT_TABLES[0]
    tables = _PROFILE_TABLES.get(profiles)
    if tables is None:
        profile_list = list(profiles)
        weights = np.asarray([p.popularity for p in profile_list], dtype=float)
        probabilities = weights / weights.sum()
        cumulative = np.cumsum(probabilities).tolist()
        small_songs = [p for p in profile_list
                       if p.category == "Audio/Video" and p.median_size <= 16 * MB]
        cumulative_arr = np.asarray(cumulative)
        mu = np.log([p.median_size for p in profile_list])
        sigma = np.asarray([p.sigma for p in profile_list])
        extensions = [p.extension for p in profile_list]
        tables = _PROFILE_TABLES[profiles] = (profile_list, probabilities,
                                              cumulative, small_songs,
                                              cumulative_arr, mu, sigma,
                                              extensions)
        if profiles is EXTENSION_PROFILES:
            _DEFAULT_TABLES.append(tables)
    return tables


class PopularContentPool:
    """A frozen pool of duplicated contents shared by every user.

    Cross-user file-level deduplication (Fig. 4a) needs users to upload the
    *same* content hashes.  The historical model grew a popularity pool
    lazily inside one global :class:`FileModel`; the plan/materialize
    generator split instead pre-builds the pool once during the global
    planning pass and hands the frozen pool to every per-user materializer,
    so independent per-user RNG streams still duplicate each other's
    contents.  Entries keep the rank-``Zipf`` popularity weights of the
    lazy-growth model: early entries attract the most duplicates, with a
    long tail of contents that gain only a couple of copies.
    """

    __slots__ = ("entries", "_cumulative", "_cumulative_arr")

    def __init__(self, entries: Sequence[tuple[str, int, str]],
                 zipf_exponent: float = 1.3):
        self.entries = list(entries)
        weights = np.arange(1, len(self.entries) + 1, dtype=float) ** (-zipf_exponent)
        self._cumulative_arr = np.cumsum(weights)
        self._cumulative = self._cumulative_arr.tolist()

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def build(cls, file_model: "FileModel", size: int,
              zipf_exponent: float = 1.3) -> "PopularContentPool":
        """Mint ``size`` popular contents using ``file_model``'s sampler."""
        return cls([file_model.mint_popular_entry() for _ in range(size)],
                   zipf_exponent=zipf_exponent)

    def sample(self, u: float) -> tuple[str, int, str]:
        """Zipf-weighted pick of ``(hash, size, extension)`` from ``u`` in [0,1)."""
        cumulative = self._cumulative
        index = bisect_right(cumulative, u * cumulative[-1])
        if index >= len(self.entries):
            index = len(self.entries) - 1
        return self.entries[index]

    def sample_many(self, u: np.ndarray) -> list[tuple[str, int, str]]:
        """Vectorised :meth:`sample` over a block of uniforms.

        One ``searchsorted`` resolves every pre-drawn uniform at once; each
        uniform maps to exactly the entry the scalar path would pick.
        """
        cumulative = self._cumulative_arr
        index = np.searchsorted(cumulative, np.asarray(u) * cumulative[-1],
                                side="right")
        np.clip(index, 0, len(self.entries) - 1, out=index)
        entries = self.entries
        return [entries[i] for i in index.tolist()]


class FileModel:
    """Samples file extensions, sizes and content hashes.

    Parameters
    ----------
    rng:
        Numpy random generator — or an :class:`RngPool` to share with other
        models drawing from the same stream (the model never creates its own
        generator so that the whole workload is reproducible from a seed).
    duplicate_fraction:
        Probability that a newly uploaded file duplicates content that some
        user already stores (file-level cross-user dedup, ratio ~0.17).
    duplicate_zipf_exponent:
        Zipf exponent governing the popularity of duplicated contents: a few
        contents (popular songs) account for a very large number of
        duplicates while ~80 % of contents have no duplicates at all.
    profiles:
        Extension profiles; defaults to :data:`EXTENSION_PROFILES`.
    shared_pool:
        Optional frozen :class:`PopularContentPool`.  When given, duplicate
        draws sample the shared pool instead of growing a private one — the
        per-user materializers of the sharded generator all point at the one
        pool built during planning, which is what keeps cross-user dedup
        alive across independent per-user RNG streams.
    hash_namespace:
        Prefix baked into minted content hashes so models drawing from
        independent streams (one per user) can never collide.
    """

    def __init__(self, rng: np.random.Generator | RngPool,
                 duplicate_fraction: float = 0.17,
                 duplicate_zipf_exponent: float = 1.3,
                 profiles: Sequence[ExtensionProfile] = EXTENSION_PROFILES,
                 max_size_bytes: int = 512 * 1024 * 1024,
                 shared_pool: PopularContentPool | None = None,
                 hash_namespace: str = ""):
        if not 0.0 <= duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")
        if not profiles:
            raise ValueError("at least one extension profile is required")
        if max_size_bytes <= 0:
            raise ValueError("max_size_bytes must be positive")
        if isinstance(rng, RngPool):
            self._pool = rng
            self._rng = rng.generator
        else:
            self._rng = rng
            self._pool = RngPool(rng)
        self._max_size_bytes = max_size_bytes
        # The derived profile tables are pure functions of the profile
        # sequence; memoising them makes per-user model construction (one
        # FileModel per user in the sharded generator) allocation-free.
        tables = _profile_tables(tuple(profiles))
        (self._profiles, self._probabilities, self._cumulative,
         self._small_songs, self._cumulative_arr, self._mu_arr,
         self._sigma_arr, self._extensions) = tables
        self._duplicate_fraction = duplicate_fraction
        self._zipf_exponent = duplicate_zipf_exponent
        # Pool of "popular" contents that attract duplicates.  The pool grows
        # lazily; its Zipf weights give a long tail of duplicates per hash.
        # The rank weight of an entry (rank^-s) never changes once assigned,
        # so the cumulative weights are maintained incrementally on growth
        # instead of being rebuilt for every draw.
        self._popular_contents: list[tuple[str, int, str]] = []
        self._zipf_cumulative: list[float] = []
        self._next_content_id = 0
        self._shared_pool = shared_pool
        self._hash_namespace = hash_namespace

    # ---------------------------------------------------------------- sizing
    def sample_profile(self) -> ExtensionProfile:
        """Sample an extension profile according to popularity."""
        index = bisect_right(self._cumulative, self._pool.random())
        if index >= len(self._profiles):
            index = len(self._profiles) - 1
        return self._profiles[index]

    def sample_size(self, profile: ExtensionProfile) -> int:
        """Sample a file size in bytes for the given extension profile."""
        mu = math.log(profile.median_size)
        size = self._pool.lognormal(mu, profile.sigma)
        return max(1, min(int(size), self._max_size_bytes))

    # --------------------------------------------------------------- content
    def _new_content_hash(self) -> str:
        self._next_content_id += 1
        return f"sha1:{self._hash_namespace}{self._next_content_id:016x}"

    def mint_popular_entry(self) -> tuple[str, int, str]:
        """Mint one popular-content entry ``(hash, size, extension)``.

        Popular duplicated contents skew towards media files (songs, videos
        shared across many users), which is what makes the byte-level dedup
        ratio (~0.17) much larger than one would get from duplicating
        typical (small) files.
        """
        profile = self.sample_profile()
        if profile.category not in ("Audio/Video", "Compressed") and self._pool.random() < 0.5:
            songs = self._small_songs
            profile = songs[self._pool.integers(len(songs))]
        return (self._new_content_hash(), self.sample_size(profile),
                profile.extension)

    def _sample_popular_content(self) -> tuple[str, int, str]:
        """Pick (or mint) a popular content entry ``(hash, size, extension)``."""
        if self._shared_pool is not None:
            return self._shared_pool.sample(self._pool.random())
        # Grow the pool occasionally so that early contents accumulate the
        # most duplicates (Zipf-like popularity) while a broad base of
        # contents ends up with only a couple of copies.
        if not self._popular_contents or self._pool.random() < 0.30:
            entry = self.mint_popular_entry()
            self._popular_contents.append(entry)
            rank = len(self._popular_contents)
            previous = self._zipf_cumulative[-1] if self._zipf_cumulative else 0.0
            self._zipf_cumulative.append(previous + rank ** (-self._zipf_exponent))
            return entry
        cumulative = self._zipf_cumulative
        index = bisect_right(cumulative, self._pool.random() * cumulative[-1])
        if index >= len(self._popular_contents):
            index = len(self._popular_contents) - 1
        return self._popular_contents[index]

    def sample_new_file(self) -> tuple[str, int, str]:
        """Sample ``(content_hash, size_bytes, extension)`` for a new file.

        With probability ``duplicate_fraction`` the content duplicates an
        existing popular content (same hash, same size); otherwise a fresh
        unique content is minted.
        """
        if self._pool.random() < self._duplicate_fraction:
            return self._sample_popular_content()
        profile = self.sample_profile()
        return self._new_content_hash(), self.sample_size(profile), profile.extension

    def sample_new_files(self, n: int) -> list[tuple[str, int, str]]:
        """Block-sample ``n`` new files with vectorised draws.

        Same per-file distribution as ``n`` calls to :meth:`sample_new_file`
        — duplicate rolls, profile picks, lognormal sizes and popular-pool
        picks are drawn as arrays instead of scalars.  Requires a shared
        popular pool (the lazy-growth pool is inherently sequential); the
        plan/materialize generator always hands one to the per-user models.
        """
        if n <= 0:
            return []
        if self._shared_pool is None:
            return [self.sample_new_file() for _ in range(n)]
        rng = self._rng
        duplicate = rng.random(n) < self._duplicate_fraction
        n_dup = int(duplicate.sum())
        results: list[tuple[str, int, str] | None] = [None] * n
        if n_dup:
            entries = self._shared_pool.sample_many(rng.random(n_dup))
            for slot, entry in zip(np.flatnonzero(duplicate).tolist(), entries):
                results[slot] = entry
        n_fresh = n - n_dup
        if n_fresh:
            index = np.searchsorted(self._cumulative_arr, rng.random(n_fresh),
                                    side="right")
            np.clip(index, 0, len(self._profiles) - 1, out=index)
            sizes = np.exp(self._mu_arr[index]
                           + self._sigma_arr[index] * rng.standard_normal(n_fresh))
            sizes = np.clip(sizes, 1, self._max_size_bytes).astype(np.int64)
            extensions = self._extensions
            fresh_iter = zip(index.tolist(), sizes.tolist())
            for slot in np.flatnonzero(~duplicate).tolist():
                profile_index, size = next(fresh_iter)
                results[slot] = (self._new_content_hash(), size,
                                 extensions[profile_index])
        return results

    def sample_updated_content(self, extension: str, old_size: int) -> tuple[str, int]:
        """Sample ``(content_hash, size)`` for an update of an existing file.

        Updates keep the size in the same ballpark (metadata edits, source
        code changes) but always produce new content — U1 has no delta
        updates, so the full file is re-uploaded.
        """
        jitter = self._pool.lognormal(0.0, 0.2)
        new_size = max(1, int(old_size * jitter))
        return self._new_content_hash(), new_size
