"""Top-level synthetic trace generator (plan/materialize split).

:class:`SyntheticTraceGenerator` stitches together the population, file,
session, operation and attack models into a stream of per-session client
scripts (:meth:`client_events`) or directly into a
:class:`~repro.trace.dataset.TraceDataset` (:meth:`generate`).

Since PR 3 generation is split into two passes:

* :meth:`SyntheticTraceGenerator.plan` is the cheap **global planning
  pass**: it draws everything that needs cross-user totals from the one
  seeded root stream — per-user session plans (including each active
  session's planned operation count), globally allocated session ids, the
  DDoS rate normalisation and the shared popular-content pool that keeps
  cross-user dedup alive.
* :func:`materialize_members` is the **per-user materialization pass**: it
  turns plan members (users or attack episodes) into concrete
  :class:`SessionScript` streams.  Every member draws exclusively from its
  own RNG stream spawned from ``(seed, member user id)``, and node /
  volume / content-hash identifiers live in per-user namespaces, so the
  realised workload is a pure function of ``(config, plan member)`` —
  independent of which replay shard (or worker process) materializes it,
  and bit-identical to running the whole generator unsharded.

The per-user materializer maintains the *client-side namespace state* of its
user — volumes, directories and files, together with their sizes, content
hashes and read/write history — so that the emitted operations are
structurally consistent: downloads read files that exist, updates rewrite
files that were uploaded before, unlinks delete live nodes, and the per-file
operation dependencies (Fig. 3) emerge from the same
editing/synchronisation behaviour the paper describes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import (
    ApiOperation,
    NodeKind,
    SessionEvent,
    VolumeType,
)
from repro.util.gctools import cyclic_gc_paused
from repro.util.rngpool import RngPool
from repro.util.units import HOUR
from repro.workload.attacks import build_attack_episodes
from repro.workload.config import WorkloadConfig
from repro.workload.diurnal import DiurnalProfile
from repro.workload.events import ClientEvent, SessionScript
from repro.workload.filemodel import FileModel, PopularContentPool
from repro.workload.opmodel import BurstGapSampler, OperationChain
from repro.workload.plan import AttackPlan, SessionSpec, UserPlan, WorkloadPlan
from repro.workload.population import User, UserClass, build_population
from repro.workload.sessionmodel import SessionModel

__all__ = [
    "SyntheticTraceGenerator",
    "UserMaterializer",
    "materialize_member",
    "materialize_members",
]


#: Spawn-key namespace of the per-member materialization streams.  Member
#: streams use ``SeedSequence(entropy=seed, spawn_key=(_SPAWN_NAMESPACE,
#: user_id))`` — a two-element key disjoint from the single-element
#: ``(shard_id,)`` keys of the replay shards, so a workload seed equal to a
#: cluster seed can never alias a user stream onto a shard stream.
_SPAWN_NAMESPACE = 0x6D41

#: Per-user id namespaces: node and volume ids are ``(user_id << _ID_BITS) +
#: local``, giving every user ~16.7M ids — materialization order inside one
#: user decides ``local``, so ids are shard- and worker-independent.  Attack
#: episodes keep their historical fixed ids below ``1 << _ID_BITS``.
_ID_BITS = 24

#: Sessions per DDoS plan-member slice.  Small enough that even the largest
#: capped episode (5000 sessions) splits into ~20 balanceable members, big
#: enough that re-running the episode's whole-episode vectorised draws per
#: slice stays negligible next to building the slice's events.
_ATTACK_SLICE_SESSIONS = 256


# ---------------------------------------------------------------------------
# Client-side namespace state
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class _FileState:
    node_id: int
    volume_id: int
    volume_type: VolumeType
    size_bytes: int
    content_hash: str
    extension: str
    created: float
    last_write: float
    last_read: float = -1.0
    reads: int = 0
    writes: int = 1


@dataclass(slots=True)
class _VolumeState:
    volume_id: int
    volume_type: VolumeType
    directory_count: int = 0
    file_ids: set[int] = field(default_factory=set)


class _PendingUploads:
    """FIFO of node ids awaiting upload: O(1) append/pop/contains/discard.

    Replaces the historical plain list whose ``pop(0)``, ``remove`` and
    ``in`` were all O(n).  Removal is lazy: ``discard`` only drops the id
    from the membership set, and ``popleft`` skips tombstoned entries.
    """

    __slots__ = ("_queue", "_members")

    def __init__(self) -> None:
        self._queue: deque[int] = deque()
        self._members: set[int] = set()

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def append(self, node_id: int) -> None:
        self._queue.append(node_id)
        self._members.add(node_id)

    def discard(self, node_id: int) -> None:
        self._members.discard(node_id)

    def popleft(self) -> int | None:
        queue = self._queue
        members = self._members
        while queue:
            node_id = queue.popleft()
            if node_id in members:
                members.discard(node_id)
                return node_id
        return None


class _FileTable:
    """Columnar mirror of a user's live files, for weighted operand choice.

    The per-operation target choices (download/update/unlink/move) weight
    every live file by recency, popularity and size.  Rebuilding a Python
    weight list per operation made operand choice O(n_files) *interpreted*
    work; this table keeps the numeric state in parallel NumPy arrays that
    are updated in O(1) on file create/delete/touch, so each choice is a
    vectorised weight computation plus a binary search over the running
    cumulative sum.
    """

    __slots__ = ("node_ids", "created", "last_write", "last_read", "reads",
                 "size_bytes", "slot", "n")

    def __init__(self, capacity: int = 16):
        self.node_ids = np.zeros(capacity, dtype=np.int64)
        self.created = np.zeros(capacity)
        self.last_write = np.zeros(capacity)
        self.last_read = np.zeros(capacity)
        self.reads = np.zeros(capacity)
        self.size_bytes = np.zeros(capacity)
        self.slot: dict[int, int] = {}
        self.n = 0

    def _grow(self) -> None:
        for name in ("node_ids", "created", "last_write", "last_read",
                     "reads", "size_bytes"):
            old = getattr(self, name)
            new = np.zeros(len(old) * 2, dtype=old.dtype)
            new[:len(old)] = old
            setattr(self, name, new)

    # -------------------------------------------------------------- updates
    def add(self, node_id: int, created: float, size_bytes: int,
            last_read: float = -1.0) -> None:
        if self.n == len(self.node_ids):
            self._grow()
        i = self.n
        self.node_ids[i] = node_id
        self.created[i] = created
        self.last_write[i] = created
        self.last_read[i] = last_read
        self.reads[i] = 0
        self.size_bytes[i] = size_bytes
        self.slot[node_id] = i
        self.n += 1

    def remove(self, node_id: int) -> None:
        i = self.slot.pop(node_id, None)
        if i is None:
            return
        last = self.n - 1
        if i != last:
            for name in ("node_ids", "created", "last_write", "last_read",
                         "reads", "size_bytes"):
                column = getattr(self, name)
                column[i] = column[last]
            self.slot[int(self.node_ids[i])] = i
        self.n = last

    def touch_write(self, node_id: int, when: float,
                    size_bytes: int | None = None) -> None:
        i = self.slot[node_id]
        self.last_write[i] = when
        if size_bytes is not None:
            self.size_bytes[i] = size_bytes

    def touch_read(self, node_id: int, when: float) -> None:
        i = self.slot[node_id]
        self.last_read[i] = when
        self.reads[i] += 1

    # -------------------------------------------------------------- choices
    def _pick(self, weights: np.ndarray, u: float) -> int:
        cumulative = np.cumsum(weights)
        index = int(np.searchsorted(cumulative, u * cumulative[-1], side="right"))
        if index >= self.n:
            index = self.n - 1
        return int(self.node_ids[index])

    def pick_weighted(self, now: float, u: float, favour_recent_writes: bool,
                      favour_popular: bool, favour_large: bool,
                      penalise_already_synced: bool = False) -> int | None:
        n = self.n
        if n == 0:
            return None
        weights = np.ones(n)
        if favour_recent_writes:
            weights[now - self.last_write[:n] < HOUR] += 4.0
        if favour_popular:
            weights += np.minimum(self.reads[:n], 10.0) * 0.5
        if favour_large:
            weights += np.minimum(self.size_bytes[:n] / (4 * 1024 * 1024), 3.0)
        if penalise_already_synced:
            weights[self.last_read[:n] > self.last_write[:n]] *= 0.15
        return self._pick(weights, u)

    def pick_update(self, now: float, u: float) -> int | None:
        n = self.n
        if n == 0:
            return None
        weights = 0.4 + np.minimum(self.size_bytes[:n] / (1024 * 1024), 1.5)
        weights[now - self.last_write[:n] < HOUR] += 2.0
        return self._pick(weights, u)

    def pick_unsynced(self, now: float, u: float) -> int | None:
        """A file with ``last_read < last_write`` (pending synchronisation)."""
        n = self.n
        unsynced = np.flatnonzero(self.last_read[:n] < self.last_write[:n])
        if unsynced.size == 0:
            return None
        weights = np.ones(unsynced.size)
        weights[now - self.last_write[unsynced] < HOUR] += 3.0
        cumulative = np.cumsum(weights)
        index = int(np.searchsorted(cumulative, u * cumulative[-1], side="right"))
        if index >= unsynced.size:
            index = unsynced.size - 1
        return int(self.node_ids[unsynced[index]])

    def has_unsynced(self) -> bool:
        n = self.n
        return bool(np.any(self.last_read[:n] < self.last_write[:n]))

    def pick_recent_created(self, now: float, window: float, u: float) -> int | None:
        """A uniformly chosen file created less than ``window`` seconds ago."""
        n = self.n
        recent = np.flatnonzero(now - self.created[:n] < window)
        if recent.size == 0:
            return None
        index = int(u * recent.size)
        if index >= recent.size:
            index = recent.size - 1
        return int(self.node_ids[recent[index]])


@dataclass
class _UserState:
    user: User
    volumes: dict[int, _VolumeState] = field(default_factory=dict)
    files: dict[int, _FileState] = field(default_factory=dict)
    pending_uploads: _PendingUploads = field(default_factory=_PendingUploads)
    table: _FileTable = field(default_factory=_FileTable)
    # Volume choice cache: (volume list, cumulative weights); rebuilt only
    # when the volume set changes (UDF creation/deletion is rare).
    volume_cache: tuple[list[_VolumeState], list[float]] | None = None

    def live_file_ids(self) -> list[int]:
        return list(self.files.keys())

    def udf_volume_ids(self) -> list[int]:
        return [v.volume_id for v in self.volumes.values()
                if v.volume_type is VolumeType.UDF]

    def root_volume_id(self) -> int:
        for volume in self.volumes.values():
            if volume.volume_type is VolumeType.ROOT:
                return volume.volume_id
        raise RuntimeError("user state has no root volume")


# ---------------------------------------------------------------------------
# Per-user materialization
# ---------------------------------------------------------------------------

def member_rng(seed: int, user_id: int) -> np.random.Generator:
    """The independent materialization stream of one plan member.

    A pure function of ``(seed, user_id)`` via the NumPy ``SeedSequence``
    spawn-key mechanism — no dependence on how many draws any other member
    (or the planning pass) made.
    """
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(_SPAWN_NAMESPACE, user_id))
    return np.random.default_rng(sequence)


class UserMaterializer:
    """Materializes one user's planned sessions into concrete scripts.

    All randomness comes from the user's own spawned stream (one
    :class:`RngPool` shared with the per-user file/operation/gap models), and
    all allocated identifiers live in the user's namespaces, so the produced
    scripts are a pure function of ``(config, user plan, popular pool)``.
    """

    def __init__(self, config: WorkloadConfig, user: User,
                 popular_pool: PopularContentPool | None,
                 diurnal: DiurnalProfile):
        self.config = config
        self.user = user
        rng = member_rng(config.seed, user.user_id)
        # One pool shared by every per-user model, with a small block: most
        # users draw a few dozen scalars, so a 4096-draw refill per user
        # would generate ~100x more random bits than the workload consumes.
        pool = RngPool(rng, block=256)
        self._rng = rng
        self._pool = pool
        self._diurnal = diurnal
        self._file_model = FileModel(
            pool,
            duplicate_fraction=config.duplicate_fraction,
            duplicate_zipf_exponent=config.duplicate_zipf_exponent,
            max_size_bytes=config.max_file_bytes,
            shared_pool=popular_pool,
            hash_namespace=f"u{user.user_id:x}-",
        )
        self._chain = OperationChain(pool)
        self._gaps = BurstGapSampler(pool, alpha=config.burst_alpha,
                                     theta=config.burst_theta,
                                     cap=config.burst_cap)
        self._id_base = user.user_id << _ID_BITS
        self._next_local_node = 0
        self._next_local_volume = 0

    # ------------------------------------------------------------------ ids
    def _new_node_id(self) -> int:
        self._next_local_node += 1
        return self._id_base + self._next_local_node

    def _new_volume_id(self) -> int:
        self._next_local_volume += 1
        return self._id_base + self._next_local_volume

    # -------------------------------------------------------- initial state
    def _init_user_state(self) -> _UserState:
        user = self.user
        state = _UserState(user=user)
        root = _VolumeState(volume_id=self._new_volume_id(),
                            volume_type=VolumeType.ROOT)
        state.volumes[root.volume_id] = root
        user.volume_ids.append(root.volume_id)
        for _ in range(user.udf_volumes):
            udf = _VolumeState(volume_id=self._new_volume_id(),
                               volume_type=VolumeType.UDF)
            state.volumes[udf.volume_id] = udf
            user.volume_ids.append(udf.volume_id)
        for _ in range(user.shared_volumes):
            shared = _VolumeState(volume_id=self._new_volume_id(),
                                  volume_type=VolumeType.SHARED)
            state.volumes[shared.volume_id] = shared
            user.volume_ids.append(shared.volume_id)

        # Pre-existing files (uploaded before the measurement window) so that
        # download-only users have something to read and RAR dependencies are
        # possible without a preceding in-trace write.
        if user.user_class is not UserClass.OCCASIONAL:
            expected = 4.0 * (1.0 + min(user.activity_weight, 20.0))
            n_files = int(self._rng.poisson(expected))
        else:
            n_files = int(self._rng.poisson(0.5))
        for _ in range(n_files):
            self._create_file(state, created=self.config.start_time - 1.0)
        return state

    def _pick_volume(self, state: _UserState) -> _VolumeState:
        cache = state.volume_cache
        if cache is None:
            volumes = list(state.volumes.values())
            cumulative: list[float] = []
            total = 0.0
            for volume in volumes:
                total += 3.0 if volume.volume_type is VolumeType.ROOT else 1.0
                cumulative.append(total)
            cache = (volumes, cumulative)
            state.volume_cache = cache
        volumes, cumulative = cache
        u = self._pool.random() * cumulative[-1]
        for volume, bound in zip(volumes, cumulative):
            if u < bound:
                return volume
        return volumes[-1]

    def _create_file(self, state: _UserState, created: float) -> _FileState:
        volume = self._pick_volume(state)
        content_hash, size, extension = self._file_model.sample_new_file()
        file_state = _FileState(
            node_id=self._new_node_id(),
            volume_id=volume.volume_id,
            volume_type=volume.volume_type,
            size_bytes=size,
            content_hash=content_hash,
            extension=extension,
            created=created,
            last_write=created,
        )
        state.files[file_state.node_id] = file_state
        state.table.add(file_state.node_id, created, size)
        volume.file_ids.add(file_state.node_id)
        return file_state

    def _drop_file(self, state: _UserState, node_id: int) -> None:
        state.files.pop(node_id, None)
        state.table.remove(node_id)
        state.pending_uploads.discard(node_id)

    # -------------------------------------------------------- operand logic
    def _weighted_file_choice(self, state: _UserState, now: float,
                              favour_recent_writes: bool,
                              favour_popular: bool,
                              favour_large: bool,
                              penalise_already_synced: bool = False) -> _FileState | None:
        node_id = state.table.pick_weighted(
            now, self._pool.random(),
            favour_recent_writes=favour_recent_writes,
            favour_popular=favour_popular, favour_large=favour_large,
            penalise_already_synced=penalise_already_synced)
        return None if node_id is None else state.files[node_id]

    def _pick_update_target(self, state: _UserState, now: float) -> _FileState | None:
        """Choose the file an update rewrites.

        Updates disproportionately hit larger, frequently edited files
        (tagged media, documents under revision), which is why they account
        for ~18.5 % of upload bytes while being only ~10 % of uploads.
        """
        node_id = state.table.pick_update(now, self._pool.random())
        return None if node_id is None else state.files[node_id]

    def _pick_download_target(self, state: _UserState, now: float) -> _FileState | None:
        """Choose the file a download reads.

        Desktop clients download content they do not have yet: files written
        since the last synchronisation (RAW dependencies), content that just
        appeared from another device or a shared folder, and — much more
        rarely — a re-download of an already synchronised popular file (RAR
        dependencies, e.g. a fresh device).  Without the re-download penalty
        a handful of large files would be fetched over and over and the R/W
        ratio would explode, which is not what the paper observes.
        """
        roll = self._pool.random()
        if roll < 0.75:
            node_id = state.table.pick_unsynced(now, self._pool.random())
            if node_id is not None:
                return state.files[node_id]
        if state.files and roll < 0.85:
            return self._weighted_file_choice(state, now, favour_recent_writes=True,
                                              favour_popular=True, favour_large=False,
                                              penalise_already_synced=True)
        # New remote content (another device or a share) appears and is synced.
        return self._create_file(state, created=now)

    def _materialize(self, state: _UserState, operation: ApiOperation,
                     t: float, session_id: int) -> ClientEvent | None:
        """Turn an abstract operation into a concrete event, updating state."""
        user = state.user
        root_volume = state.root_volume_id()

        if operation is ApiOperation.MAKE:
            if self._pool.random() < 0.30:
                volume = self._pick_volume(state)
                volume.directory_count += 1
                return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                                   operation=operation, node_id=self._new_node_id(),
                                   volume_id=volume.volume_id,
                                   volume_type=volume.volume_type,
                                   node_kind=NodeKind.DIRECTORY)
            file_state = self._create_file(state, created=t)
            state.pending_uploads.append(file_state.node_id)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, node_id=file_state.node_id,
                               volume_id=file_state.volume_id,
                               volume_type=file_state.volume_type,
                               node_kind=NodeKind.FILE)

        if operation is ApiOperation.UPLOAD:
            update_target = None
            if state.files and self._pool.random() < self.config.update_fraction * 1.3:
                update_target = self._pick_update_target(state, t)
            if update_target is not None and update_target.node_id not in state.pending_uploads:
                new_hash, new_size = self._file_model.sample_updated_content(
                    update_target.extension, update_target.size_bytes)
                update_target.content_hash = new_hash
                update_target.size_bytes = new_size
                update_target.last_write = t
                update_target.writes += 1
                state.table.touch_write(update_target.node_id, t, new_size)
                return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                                   operation=operation, node_id=update_target.node_id,
                                   volume_id=update_target.volume_id,
                                   volume_type=update_target.volume_type,
                                   node_kind=NodeKind.FILE,
                                   size_bytes=update_target.size_bytes,
                                   content_hash=new_hash,
                                   extension=update_target.extension,
                                   is_update=True)
            if state.pending_uploads:
                node_id = state.pending_uploads.popleft()
                file_state = state.files.get(node_id)
                if file_state is None:
                    return None
                file_state.last_write = t
                state.table.touch_write(node_id, t)
            else:
                file_state = self._create_file(state, created=t)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, node_id=file_state.node_id,
                               volume_id=file_state.volume_id,
                               volume_type=file_state.volume_type,
                               node_kind=NodeKind.FILE,
                               size_bytes=file_state.size_bytes,
                               content_hash=file_state.content_hash,
                               extension=file_state.extension,
                               is_update=False)

        if operation is ApiOperation.DOWNLOAD:
            target = self._pick_download_target(state, t)
            if target is None:
                return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                                   operation=ApiOperation.GET_DELTA,
                                   volume_id=root_volume)
            target.last_read = t
            target.reads += 1
            state.table.touch_read(target.node_id, t)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, node_id=target.node_id,
                               volume_id=target.volume_id,
                               volume_type=target.volume_type,
                               node_kind=NodeKind.FILE,
                               size_bytes=target.size_bytes,
                               content_hash=target.content_hash,
                               extension=target.extension)

        if operation is ApiOperation.UNLINK:
            if not state.files:
                return None
            target = None
            if self._pool.random() < self.config.short_lived_file_fraction:
                node_id = state.table.pick_recent_created(t, 8 * HOUR,
                                                          self._pool.random())
                if node_id is not None:
                    target = state.files[node_id]
            if target is None:
                target = self._weighted_file_choice(state, t, favour_recent_writes=False,
                                                    favour_popular=False, favour_large=False)
            if target is None:
                return None
            self._drop_file(state, target.node_id)
            volume = state.volumes.get(target.volume_id)
            if volume is not None:
                volume.file_ids.discard(target.node_id)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, node_id=target.node_id,
                               volume_id=target.volume_id,
                               volume_type=target.volume_type,
                               node_kind=NodeKind.FILE,
                               extension=target.extension)

        if operation is ApiOperation.MOVE:
            target = self._weighted_file_choice(state, t, favour_recent_writes=False,
                                                favour_popular=False, favour_large=False)
            if target is None:
                return None
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, node_id=target.node_id,
                               volume_id=target.volume_id,
                               volume_type=target.volume_type,
                               node_kind=NodeKind.FILE,
                               extension=target.extension)

        if operation is ApiOperation.CREATE_UDF:
            udf = _VolumeState(volume_id=self._new_volume_id(),
                               volume_type=VolumeType.UDF)
            state.volumes[udf.volume_id] = udf
            state.volume_cache = None
            user.volume_ids.append(udf.volume_id)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, volume_id=udf.volume_id,
                               volume_type=VolumeType.UDF,
                               node_kind=NodeKind.DIRECTORY)

        if operation is ApiOperation.DELETE_VOLUME:
            udf_ids = state.udf_volume_ids()
            if not udf_ids:
                return None
            volume_id = udf_ids[self._pool.integers(len(udf_ids))]
            volume = state.volumes.pop(volume_id)
            state.volume_cache = None
            for node_id in volume.file_ids:
                self._drop_file(state, node_id)
            return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                               operation=operation, volume_id=volume_id,
                               volume_type=VolumeType.UDF,
                               node_kind=NodeKind.DIRECTORY)

        # Maintenance operations carry no operand beyond the root volume.
        return ClientEvent(time=t, user_id=user.user_id, session_id=session_id,
                           operation=operation, volume_id=root_volume)

    # ------------------------------------------------------------- sessions
    def _build_session(self, state: _UserState, spec: SessionSpec) -> SessionScript:
        script = SessionScript(user_id=self.user.user_id,
                               session_id=spec.session_id,
                               start=spec.start, end=spec.end)
        if spec.auth_fails:
            # Failed authentications never establish a session; the script is
            # kept (it still hits the auth service) but carries no events.
            script.auth_failed = True
            return script

        if not spec.active:
            # Cold session: occasional maintenance interactions so that long
            # idle sessions still register as "online" activity.
            t = spec.start + 1.0
            while t < spec.end:
                operation = (ApiOperation.GET_DELTA if self._pool.random() < 0.6
                             else ApiOperation.QUERY_SET_CAPS)
                event = self._materialize(state, operation, t, spec.session_id)
                if event is not None:
                    script.events.append(event)
                t += self._pool.uniform(4 * HOUR, 10 * HOUR)
            return script

        t = spec.start + self._pool.uniform(0.2, 3.0)
        operation = self._chain.initial_operation()
        allow_volume_ops = state.user.udf_volumes > 0 or self._pool.random() < 0.3
        for _ in range(spec.n_ops):
            if t >= spec.end:
                break
            event = self._materialize(state, operation, t, spec.session_id)
            if event is not None:
                script.events.append(event)
            t += self._gaps.sample()
            operation = self._chain.next_operation(
                operation, state.user,
                download_bias=self._diurnal.download_bias(t),
                allow_volume_ops=allow_volume_ops)
        return script

    # ------------------------------------------------------------------ API
    def materialize(self, plan: UserPlan) -> list[SessionScript]:
        """All of this user's session scripts, in chronological order."""
        state = self._init_user_state()
        scripts = []
        for spec in plan.sessions:
            script = self._build_session(state, spec)
            script.member_planned_ops = plan.planned_ops
            scripts.append(script)
        return scripts


def _materialize_attack(config: WorkloadConfig,
                        plan: AttackPlan) -> list[SessionScript]:
    """Materialize one DDoS episode slice from the attacker's own stream."""
    rng = member_rng(config.seed, plan.episode.attacker_user_id)
    return list(plan.episode.generate_sessions(
        rng, plan.baseline_sessions_per_hour,
        plan.baseline_storage_ops_per_hour,
        session_id_start=plan.session_id_start,
        member_planned_ops=plan.planned_ops,
        session_range=plan.sessions_slice))


def materialize_member(plan: WorkloadPlan, index: int,
                       diurnal: DiurnalProfile | None = None) -> list[SessionScript]:
    """Materialize one plan member (user or attack slice) into scripts."""
    config = plan.config
    n_users = len(plan.users)
    if index < n_users:
        user_plan = plan.users[index]
        if not user_plan.sessions:
            # No sessions -> no scripts; skip building the materializer (the
            # user's stream is independent, so skipping draws nothing).
            return []
        if diurnal is None:
            diurnal = DiurnalProfile(
                peak_to_trough=config.diurnal_peak_to_trough,
                weekend_factor=config.weekend_factor)
        materializer = UserMaterializer(config, user_plan.user,
                                        plan.popular_pool, diurnal)
        scripts = materializer.materialize(user_plan)
    else:
        scripts = _materialize_attack(config, plan.attacks[index - n_users])
    for script in scripts:
        script.plan_member = index
    return scripts


def _script_order(script: SessionScript) -> tuple[float, int]:
    """Canonical script order: ``(start, session_id)``.

    Session ids are globally unique and allocated by the plan, so this is a
    total order — materializing any partition of the members and sorting
    each part yields per-shard streams whose stable merge equals the
    unsharded generator output, independent of partition shape.
    """
    return (script.start, script.session_id)


def materialize_members(plan: WorkloadPlan,
                        members: Sequence[int] | None = None) -> list[SessionScript]:
    """Materialize plan members (default: all) sorted in canonical order."""
    config = plan.config
    diurnal = DiurnalProfile(peak_to_trough=config.diurnal_peak_to_trough,
                             weekend_factor=config.weekend_factor)
    indices = range(plan.n_members) if members is None else members
    scripts: list[SessionScript] = []
    for index in indices:
        scripts.extend(materialize_member(plan, index, diurnal=diurnal))
    scripts.sort(key=_script_order)
    return scripts


# ---------------------------------------------------------------------------
# The generator façade: global planning + convenience materialization
# ---------------------------------------------------------------------------

class SyntheticTraceGenerator:
    """Generates a synthetic U1 workload from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig):
        config.validate()
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._pool = RngPool(self._rng)
        self._diurnal = DiurnalProfile(
            peak_to_trough=config.diurnal_peak_to_trough,
            weekend_factor=config.weekend_factor,
        )
        # Plan-time file model: mints the shared popular-content pool every
        # per-user materializer duplicates from.
        self._file_model = FileModel(
            self._pool,
            duplicate_fraction=config.duplicate_fraction,
            duplicate_zipf_exponent=config.duplicate_zipf_exponent,
            max_size_bytes=config.max_file_bytes,
            hash_namespace="pop-",
        )
        self._session_model = SessionModel(config, self._rng, self._diurnal)
        self._population = build_population(config, self._rng)

    @property
    def population(self) -> list[User]:
        """The synthetic user population."""
        return self._population

    # ------------------------------------------------------------- planning
    def _sample_ops_count(self, user: User) -> int:
        base = self.config.mean_ops_per_active_session
        weight_factor = 0.5 + min(user.activity_weight, 50.0)
        heavy_tail = self._pool.pareto(1.15) + 0.3
        count = int(base * heavy_tail * weight_factor / 5.0) + 1
        return min(count, self.config.max_ops_per_session)

    def plan(self) -> WorkloadPlan:
        """The global planning pass (see :mod:`repro.workload.plan`).

        Consumes the generator's root RNG stream, so each call plans a fresh
        (equally likely) realisation; everything downstream of the returned
        plan — materialization, sharding, replay — is deterministic in it.
        """
        with cyclic_gc_paused():
            return self._plan()

    def _plan(self) -> WorkloadPlan:
        config = self.config
        user_plans: list[UserPlan] = []
        session_id = 0
        planned_storage_ops = 0.0
        # Expected inter-operation gap E[min(pareto(alpha, theta), cap)]:
        # sessions stop materializing operations when the timeline passes
        # their end, so the *expected realized* operation count of an active
        # session is min(n_ops, 1 + length / E[gap]) — using the raw drawn
        # n_ops would overweight long heavy-tail draws that a short session
        # truncates, inflating both the attack-rate baseline and the LPT
        # weights.
        alpha, theta, cap = config.burst_alpha, config.burst_theta, config.burst_cap
        mean_gap = theta * (1.0 + (1.0 - (theta / cap) ** (alpha - 1.0))
                            / (alpha - 1.0))
        for user in self._population:
            specs: list[SessionSpec] = []
            weight = 0.0
            for p in self._session_model.plan_user_sessions(user):
                session_id += 1
                n_ops = 0
                if p.auth_fails:
                    weight += 0.25
                elif p.active:
                    n_ops = self._sample_ops_count(user)
                    expected = min(float(n_ops), 1.0 + p.length / mean_gap)
                    weight += 1.0 + expected
                    planned_storage_ops += expected
                else:
                    # Cold sessions only poll every 4-10 h; weigh them by the
                    # expected number of maintenance interactions.
                    weight += 1.0 + p.length / (7.0 * HOUR)
                specs.append(SessionSpec(session_id=session_id, start=p.start,
                                         length=p.length, active=p.active,
                                         auth_fails=p.auth_fails, n_ops=n_ops))
            user_plans.append(UserPlan(user=user, sessions=tuple(specs),
                                       planned_ops=weight))

        # Attack episodes are scaled from the *planned* legitimate baseline
        # (the realized baseline is not known before materialization, which
        # now happens inside the replay workers).
        duration_hours = max(config.duration_days * 24.0, 1e-9)
        legit_sessions_per_hour = max(session_id / duration_hours, 1.0)
        legit_storage_per_hour = max(planned_storage_ops / duration_hours, 1.0)
        episodes = build_attack_episodes(
            config,
            first_attacker_id=config.n_users + 1,
            first_node_id=10_000_000,
            first_volume_id=10_000_000,
        )
        attack_plans: list[AttackPlan] = []
        for episode in episodes:
            n_sessions, n_storage_ops = episode.planned_size(
                legit_sessions_per_hour, legit_storage_per_hour)
            # Cut the episode into session-range slices — independent plan
            # members the LPT assignment can spread across shards, so one
            # botnet flood no longer defines the replay's critical path.
            n_slices = max(1, (n_sessions + _ATTACK_SLICE_SESSIONS - 1)
                           // _ATTACK_SLICE_SESSIONS)
            bounds = [round(k * n_sessions / n_slices)
                      for k in range(n_slices + 1)]
            episode_weight = float(n_sessions + n_storage_ops)
            for k in range(n_slices):
                lo, hi = bounds[k], bounds[k + 1]
                share = (hi - lo) / n_sessions
                attack_plans.append(AttackPlan(
                    episode=episode,
                    baseline_sessions_per_hour=legit_sessions_per_hour,
                    baseline_storage_ops_per_hour=legit_storage_per_hour,
                    session_id_start=session_id,
                    sessions_slice=(lo, hi),
                    n_storage_ops=round(n_storage_ops * share),
                    planned_ops=episode_weight * share))
            session_id += n_sessions

        # Shared popular-content pool, sized to the planned workload (the
        # lazy-growth model minted roughly 0.3 entries per duplicate draw).
        expected_creations = 0.5 * planned_storage_ops + 8.0 * len(self._population)
        pool_size = int(0.3 * config.duplicate_fraction * expected_creations)
        pool_size = max(32, min(pool_size, 200_000))
        popular_pool = PopularContentPool.build(
            self._file_model, pool_size,
            zipf_exponent=config.duplicate_zipf_exponent)

        return WorkloadPlan(config=config, users=tuple(user_plans),
                            attacks=tuple(attack_plans),
                            popular_pool=popular_pool)

    # ------------------------------------------------------------------ API
    def client_events(self) -> list[SessionScript]:
        """Generate every session script of the measurement window.

        Equivalent to planning and materializing every member in-process:
        the result is sorted by ``(start, session_id)`` and includes both
        the legitimate workload and the configured DDoS episodes.
        Generation is a cycle-free bulk allocation, so the cyclic garbage
        collector is paused for the duration (see :mod:`repro.util.gctools`).
        """
        with cyclic_gc_paused():
            return materialize_members(self._plan())

    # ------------------------------------------------------------ rendering
    def _placement(self) -> tuple[str, int]:
        """Random (machine, process) placement used when no simulator runs."""
        machine = self._pool.integers(self.config.api_machines)
        process = self._pool.integers(self.config.processes_per_machine)
        return f"api{machine}", process

    def generate(self) -> TraceDataset:
        """Render the workload directly into a :class:`TraceDataset`.

        The records produced here carry client-observable information only
        (no RPC decomposition, no service times); analyses of the metadata
        back-end (Figs. 12-14) require running the same scripts through
        :class:`repro.backend.cluster.U1Cluster` instead.
        """
        dataset = TraceDataset()
        shards = self.config.metadata_shards
        # Row-append fast paths (positional record-field order); record
        # objects are only built if an analysis iterates the dataset.
        session_row = dataset.append_session_row
        storage_row = dataset.append_storage_row
        for script in self.client_events():
            server, process = self._placement()
            shard_id = script.user_id % shards
            user_id = script.user_id
            session_id = script.session_id
            attack = script.caused_by_attack
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.AUTH_REQUEST, attack, -1.0, 0)
            if script.auth_failed:
                session_row(script.start, server, process, user_id, session_id,
                            SessionEvent.AUTH_FAIL, attack, -1.0, 0)
                continue
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.AUTH_OK, attack, -1.0, 0)
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.CONNECT, attack, -1.0, 0)
            for event in script.events:
                storage_row(event.time, server, process, event.user_id,
                            event.session_id, event.operation, event.node_id,
                            event.volume_id, event.volume_type, event.node_kind,
                            event.size_bytes, event.content_hash,
                            event.extension, event.is_update, shard_id,
                            event.caused_by_attack)
            session_row(script.end, server, process, user_id, session_id,
                        SessionEvent.DISCONNECT, attack, script.length,
                        script.storage_operation_count)
        dataset.sort()
        return dataset
