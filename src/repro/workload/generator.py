"""Top-level synthetic trace generator (plan/materialize split).

:class:`SyntheticTraceGenerator` stitches together the population, file,
session, operation and attack models into a stream of per-session client
scripts (:meth:`client_events`) or directly into a
:class:`~repro.trace.dataset.TraceDataset` (:meth:`generate`).

Since PR 3 generation is split into two passes:

* :meth:`SyntheticTraceGenerator.plan` is the cheap **global planning
  pass**: it draws everything that needs cross-user totals from the one
  seeded root stream — per-user session plans (including each active
  session's planned operation count), globally allocated session ids, the
  DDoS rate normalisation and the shared popular-content pool that keeps
  cross-user dedup alive.
* :func:`materialize_members` is the **per-user materialization pass**: it
  turns plan members (users or attack episodes) into concrete
  :class:`SessionScript` streams.  Every member draws exclusively from its
  own RNG stream spawned from ``(seed, member user id)``, and node /
  volume / content-hash identifiers live in per-user namespaces, so the
  realised workload is a pure function of ``(config, plan member)`` —
  independent of which replay shard (or worker process) materializes it,
  and bit-identical to running the whole generator unsharded.

The per-user materializer maintains the *client-side namespace state* of its
user — volumes, directories and files, together with their sizes, content
hashes and read/write history — so that the emitted operations are
structurally consistent: downloads read files that exist, updates rewrite
files that were uploaded before, unlinks delete live nodes, and the per-file
operation dependencies (Fig. 3) emerge from the same
editing/synchronisation behaviour the paper describes.

Since PR 5 each session's *stochastic structure* is drawn as arrays up
front instead of event by event: the inter-operation gaps come from one
``BurstGapSampler.sample_many`` block (the timeline and its truncation at
the session end are one cumulative sum), the per-step download biases are
one vectorised diurnal evaluation, the whole operation sequence is an
inverse-CDF walk over per-user-class compiled transition tables
(:func:`repro.workload.opmodel.compiled_chain`) driven by one uniform
block, and the operand randomness — update/download rolls, target
selectors, new-file contents — is pre-drawn in per-session typed blocks.
Only the truly state-dependent residue (file-table weight lookups, volume
bookkeeping, pending-upload coupling) stays in the per-event loop,
consuming the pre-drawn arrays.  Users whose plans hold only cold or
auth-failing sessions skip the file/gap models and the pre-existing-file
draws entirely.  All of it preserves the PR 3 invariant: the realised
workload remains a pure function of ``(config, plan member)``, bit
identical across any member partition and any ``--jobs``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import (
    ApiOperation,
    NodeKind,
    SessionEvent,
    VolumeType,
)
from repro.util.gctools import cyclic_gc_paused
from repro.util.rngpool import RngPool
from repro.util.units import HOUR
from repro.workload.attacks import build_attack_episodes
from repro.workload.config import WorkloadConfig
from repro.workload.diurnal import DiurnalProfile
from repro.workload.events import ClientEvent, EventBlock, SessionScript
from repro.workload.filemodel import FileModel, PopularContentPool
from repro.workload.opmodel import (
    CHAIN_OP_INDEX,
    CHAIN_OPS,
    BurstGapSampler,
    compiled_chain,
)
from repro.workload.plan import AttackPlan, SessionSpec, UserPlan, WorkloadPlan
from repro.workload.population import User, UserClass, build_population
from repro.workload.sessionmodel import SessionModel

__all__ = [
    "SyntheticTraceGenerator",
    "UserMaterializer",
    "materialize_member",
    "materialize_members",
]


#: Spawn-key namespace of the per-member materialization streams.  Member
#: streams use ``SeedSequence(entropy=seed, spawn_key=(_SPAWN_NAMESPACE,
#: user_id))`` — a two-element key disjoint from the single-element
#: ``(shard_id,)`` keys of the replay shards, so a workload seed equal to a
#: cluster seed can never alias a user stream onto a shard stream.
_SPAWN_NAMESPACE = 0x6D41

#: Per-user id namespaces: node and volume ids are ``(user_id << _ID_BITS) +
#: local``, giving every user ~16.7M ids — materialization order inside one
#: user decides ``local``, so ids are shard- and worker-independent.  Attack
#: episodes keep their historical fixed ids below ``1 << _ID_BITS``.
_ID_BITS = 24

#: Sessions per DDoS plan-member slice.  Small enough that even the largest
#: capped episode (5000 sessions) splits into ~20 balanceable members, big
#: enough that re-running the episode's whole-episode vectorised draws per
#: slice stays negligible next to building the slice's events.
_ATTACK_SLICE_SESSIONS = 256

#: Live-file counts up to which the weighted operand choices run as plain
#: Python loops.  A tiny NumPy weight computation costs ~10 us in call
#: overhead alone; below this size the scalar scan over the same columns is
#: several times cheaper, above it the vectorised path wins.  The cutover
#: only selects between two evaluations of the same weights, so the chosen
#: operand is the same either way.
_SMALL_TABLE = 48

#: Update-targeting editing burst (see ``_FileTable.pick_update``): extra
#: weight on files written within the window, so consecutive saves of the
#: same document chain into WAW dependencies the way Fig. 3a observes
#: ("WAW is the most common dependency", 80 % of WAW gaps under an hour).
_UPDATE_BURST_WINDOW = 15 * 60.0
_UPDATE_BURST_BONUS = 8.0

#: Multiplier on ``config.update_fraction`` for update *attempts* (misses
#: fall back to fresh uploads, so the realised update share lands near the
#: paper's ~10-15 %).  Raised from the historical 1.3 as part of the WAW
#: recalibration: same-file re-uploads were under-produced by a factor
#: that left the Fig. 3a WAW share near-vacuous.
_UPDATE_ATTEMPT_BOOST = 2.0

#: Download-target mix (WAW recalibration).  U1 is a backup-flavoured
#: service: most uploads are never read back, downloads are dominated by
#: repeated reads of popular content (RAR) and newly appearing remote
#: content, and only a modest share synchronises just-written files (RAW).
#: rolls < _DL_SYNC pick an unsynced file; rolls < _DL_KNOWN re-read known
#: content; the rest sync fresh remote content into the namespace.
_DL_SYNC_SHARE = 0.30
_DL_KNOWN_SHARE = 0.80

def _update_base_weight(size_bytes: float) -> float:
    """Size-derived update-pick weight: ``0.4 + min(size / 1 MB, 1.5)``."""
    boost = size_bytes / (1024 * 1024)
    return 0.4 + (boost if boost < 1.5 else 1.5)


#: Chain-state indices the per-event dispatch switches on.  ``CHAIN_OPS``
#: orders the maintenance operations (no operand, no namespace state)
#: first, so one integer compare against ``_FIRST_STATEFUL`` routes them
#: past the whole dispatch ladder.
_FIRST_STATEFUL = CHAIN_OP_INDEX[ApiOperation.MAKE]
_OP_MAKE = CHAIN_OP_INDEX[ApiOperation.MAKE]
_OP_UPLOAD = CHAIN_OP_INDEX[ApiOperation.UPLOAD]
_OP_DOWNLOAD = CHAIN_OP_INDEX[ApiOperation.DOWNLOAD]
_OP_UNLINK = CHAIN_OP_INDEX[ApiOperation.UNLINK]
_OP_MOVE = CHAIN_OP_INDEX[ApiOperation.MOVE]
_OP_CREATE_UDF = CHAIN_OP_INDEX[ApiOperation.CREATE_UDF]
_OP_DELETE_VOLUME = CHAIN_OP_INDEX[ApiOperation.DELETE_VOLUME]


# ---------------------------------------------------------------------------
# Client-side namespace state
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class _FileState:
    node_id: int
    volume_id: int
    volume_type: VolumeType
    size_bytes: int
    content_hash: str
    extension: str
    created: float
    last_write: float
    last_read: float = -1.0
    reads: int = 0
    writes: int = 1


@dataclass(slots=True)
class _VolumeState:
    volume_id: int
    volume_type: VolumeType
    directory_count: int = 0
    file_ids: set[int] = field(default_factory=set)


class _PendingUploads:
    """FIFO of node ids awaiting upload: O(1) append/pop/contains/discard.

    Replaces the historical plain list whose ``pop(0)``, ``remove`` and
    ``in`` were all O(n).  Removal is lazy: ``discard`` only drops the id
    from the membership set, and ``popleft`` skips tombstoned entries.
    """

    __slots__ = ("_queue", "_members")

    def __init__(self) -> None:
        self._queue: deque[int] = deque()
        self._members: set[int] = set()

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def append(self, node_id: int) -> None:
        self._queue.append(node_id)
        self._members.add(node_id)

    def discard(self, node_id: int) -> None:
        self._members.discard(node_id)

    def popleft(self) -> int | None:
        queue = self._queue
        members = self._members
        while queue:
            node_id = queue.popleft()
            if node_id in members:
                members.discard(node_id)
                return node_id
        return None


class _FileTable:
    """Columnar mirror of a user's live files, for weighted operand choice.

    The per-operation target choices (download/update/unlink/move) weight
    every live file by recency, popularity and size.  Rebuilding a Python
    weight list per operation made operand choice O(n_files) *interpreted*
    work; this table keeps the numeric state in parallel NumPy arrays that
    are updated in O(1) on file create/delete/touch, so each choice is a
    vectorised weight computation plus a binary search over the running
    cumulative sum.
    """

    __slots__ = ("node_ids", "created", "last_write", "last_read", "reads",
                 "size_bytes", "upd_base", "slot", "n", "scratch", "unsynced")

    def __init__(self, capacity: int = 16):
        self.node_ids = np.zeros(capacity, dtype=np.int64)
        self.created = np.zeros(capacity)
        self.last_write = np.zeros(capacity)
        self.last_read = np.zeros(capacity)
        self.reads = np.zeros(capacity)
        self.size_bytes = np.zeros(capacity)
        # Size-derived update-pick base weight (0.4 + min(size/1MB, 1.5)),
        # maintained incrementally so pick_update never recomputes it.
        self.upd_base = np.zeros(capacity)
        # Node ids with ``last_read < last_write`` (pending synchronisation),
        # maintained incrementally: O(1) membership churn per touch instead
        # of an O(n_files) scan per sync-download pick.
        self.unsynced: set[int] = set()
        # Reused weight buffer of the vectorised picks (never holds state
        # across calls); sized with the columns.
        self.scratch = np.empty(capacity)
        self.slot: dict[int, int] = {}
        self.n = 0

    def _grow(self) -> None:
        for name in ("node_ids", "created", "last_write", "last_read",
                     "reads", "size_bytes", "upd_base"):
            old = getattr(self, name)
            new = np.zeros(len(old) * 2, dtype=old.dtype)
            new[:len(old)] = old
            setattr(self, name, new)
        self.scratch = np.empty(len(self.node_ids))

    # -------------------------------------------------------------- updates
    def add(self, node_id: int, created: float, size_bytes: int,
            last_read: float = -1.0) -> None:
        if self.n == len(self.node_ids):
            self._grow()
        i = self.n
        self.node_ids[i] = node_id
        self.created[i] = created
        self.last_write[i] = created
        self.last_read[i] = last_read
        self.reads[i] = 0
        self.size_bytes[i] = size_bytes
        self.upd_base[i] = _update_base_weight(size_bytes)
        self.slot[node_id] = i
        if last_read < created:
            self.unsynced.add(node_id)
        self.n += 1

    def add_block(self, node_ids: list[int], created: float,
                  sizes: list[int]) -> None:
        """Bulk-register files created at the same instant (initial state)."""
        k = len(node_ids)
        while self.n + k > len(self.node_ids):
            self._grow()
        i = self.n
        stop = i + k
        self.node_ids[i:stop] = node_ids
        self.created[i:stop] = created
        self.last_write[i:stop] = created
        self.last_read[i:stop] = -1.0
        self.reads[i:stop] = 0
        self.size_bytes[i:stop] = sizes
        base = self.upd_base[i:stop]
        np.multiply(self.size_bytes[i:stop], 1.0 / (1024 * 1024), out=base)
        np.minimum(base, 1.5, out=base)
        base += 0.4
        slot = self.slot
        for offset, node_id in enumerate(node_ids):
            slot[node_id] = i + offset
        self.unsynced.update(node_ids)
        self.n = stop

    def remove(self, node_id: int) -> None:
        i = self.slot.pop(node_id, None)
        if i is None:
            return
        self.unsynced.discard(node_id)
        last = self.n - 1
        if i != last:
            for name in ("node_ids", "created", "last_write", "last_read",
                         "reads", "size_bytes", "upd_base"):
                column = getattr(self, name)
                column[i] = column[last]
            self.slot[int(self.node_ids[i])] = i
        self.n = last

    def touch_write(self, node_id: int, when: float,
                    size_bytes: int | None = None) -> None:
        i = self.slot[node_id]
        self.last_write[i] = when
        if size_bytes is not None:
            self.size_bytes[i] = size_bytes
            self.upd_base[i] = _update_base_weight(size_bytes)
        if self.last_read[i] < when:
            self.unsynced.add(node_id)
        else:
            self.unsynced.discard(node_id)

    def touch_read(self, node_id: int, when: float) -> None:
        i = self.slot[node_id]
        self.last_read[i] = when
        self.reads[i] += 1
        if when < self.last_write[i]:
            self.unsynced.add(node_id)
        else:
            self.unsynced.discard(node_id)

    # -------------------------------------------------------------- choices
    #
    # Every flavour has two evaluations of the same weights: a plain-Python
    # scan for small tables (where NumPy call overhead dominates) and the
    # vectorised computation above ``_SMALL_TABLE`` files.  The uniform ``u``
    # comes pre-drawn from the caller's per-session blocks.

    def _pick(self, weights: np.ndarray, u: float) -> int:
        cumulative = np.cumsum(weights, out=weights)
        index = int(cumulative.searchsorted(u * cumulative[-1], side="right"))
        if index >= self.n:
            index = self.n - 1
        return int(self.node_ids[index])

    def _pick_small(self, weights: list[float], u: float) -> int:
        x = u * sum(weights)
        acc = 0.0
        index = 0
        for index, weight in enumerate(weights):
            acc += weight
            if x < acc:
                break
        return int(self.node_ids[index])

    def pick_weighted(self, now: float, u: float, favour_recent_writes: bool,
                      favour_popular: bool, favour_large: bool,
                      penalise_already_synced: bool = False) -> int | None:
        n = self.n
        if n == 0:
            return None
        if n <= _SMALL_TABLE:
            last_write = self.last_write[:n].tolist()
            weights = [1.0] * n
            if favour_recent_writes:
                for i, written in enumerate(last_write):
                    if now - written < HOUR:
                        weights[i] += 4.0
            if favour_popular:
                for i, reads in enumerate(self.reads[:n].tolist()):
                    weights[i] += (reads if reads < 10.0 else 10.0) * 0.5
            if favour_large:
                for i, size in enumerate(self.size_bytes[:n].tolist()):
                    boost = size / (4 * 1024 * 1024)
                    weights[i] += boost if boost < 3.0 else 3.0
            if penalise_already_synced:
                for i, read in enumerate(self.last_read[:n].tolist()):
                    if read > last_write[i]:
                        weights[i] *= 0.15
            return self._pick_small(weights, u)
        weights = self.scratch[:n]
        weights[:] = 1.0
        if favour_recent_writes:
            weights[now - self.last_write[:n] < HOUR] += 4.0
        if favour_popular:
            weights += np.minimum(self.reads[:n], 10.0) * 0.5
        if favour_large:
            weights += np.minimum(self.size_bytes[:n] / (4 * 1024 * 1024), 3.0)
        if penalise_already_synced:
            weights[self.last_read[:n] > self.last_write[:n]] *= 0.15
        return self._pick(weights, u)

    def pick_update(self, now: float, u: float) -> int | None:
        """The file an update rewrites: size-, recency- and burst-weighted.

        The ``_UPDATE_BURST_*`` term models editing bursts — a user saving
        the same document over and over — which is what makes WAW the most
        common same-file dependency in the paper (Fig. 3a): a file written
        in the last few minutes is overwhelmingly the next update target.
        """
        n = self.n
        if n == 0:
            return None
        if n <= _SMALL_TABLE:
            weights = []
            last_write = self.last_write[:n].tolist()
            for i, weight in enumerate(self.upd_base[:n].tolist()):
                gap = now - last_write[i]
                if gap < HOUR:
                    weight += 2.0
                    if gap < _UPDATE_BURST_WINDOW:
                        weight += _UPDATE_BURST_BONUS
                weights.append(weight)
            return self._pick_small(weights, u)
        gaps = now - self.last_write[:n]
        weights = self.scratch[:n]
        np.copyto(weights, self.upd_base[:n])
        weights[gaps < HOUR] += 2.0
        weights[gaps < _UPDATE_BURST_WINDOW] += _UPDATE_BURST_BONUS
        return self._pick(weights, u)

    def pick_reread(self, u: float) -> int | None:
        """A re-download target, weighted by read popularity (RAR, Fig. 3b).

        Already-read files dominate; never-read files keep a small base
        weight so fresh remote content can enter the popular set.
        """
        n = self.n
        if n == 0:
            return None
        if n <= _SMALL_TABLE:
            weights = [0.15 + (reads if reads < 10.0 else 10.0)
                       for reads in self.reads[:n].tolist()]
            return self._pick_small(weights, u)
        weights = self.scratch[:n]
        np.minimum(self.reads[:n], 10.0, out=weights)
        weights += 0.15
        return self._pick(weights, u)

    def pick_unsynced(self, now: float, u: float) -> int | None:
        """A file with ``last_read < last_write`` (pending synchronisation)."""
        members = self.unsynced
        k = len(members)
        if k == 0:
            return None
        if k <= 2 * _SMALL_TABLE:
            slot = self.slot
            last_write = self.last_write
            node_list = list(members)
            weights = []
            for node_id in node_list:
                written = last_write[slot[node_id]]
                weights.append(4.0 if now - written < HOUR else 1.0)
            x = u * sum(weights)
            acc = 0.0
            index = 0
            for index, weight in enumerate(weights):
                acc += weight
                if x < acc:
                    break
            return node_list[index]
        n = self.n
        unsynced = np.flatnonzero(self.last_read[:n] < self.last_write[:n])
        weights = np.ones(unsynced.size)
        weights[now - self.last_write[unsynced] < HOUR] += 3.0
        cumulative = np.cumsum(weights)
        index = int(np.searchsorted(cumulative, u * cumulative[-1], side="right"))
        if index >= unsynced.size:
            index = unsynced.size - 1
        return int(self.node_ids[unsynced[index]])

    def pick_recent_created(self, now: float, window: float, u: float) -> int | None:
        """A uniformly chosen file created less than ``window`` seconds ago."""
        n = self.n
        if n <= _SMALL_TABLE:
            recent = [i for i, created in enumerate(self.created[:n].tolist())
                      if now - created < window]
            if not recent:
                return None
            index = int(u * len(recent))
            if index >= len(recent):
                index = len(recent) - 1
            return int(self.node_ids[recent[index]])
        recent = np.flatnonzero(now - self.created[:n] < window)
        if recent.size == 0:
            return None
        index = int(u * recent.size)
        if index >= recent.size:
            index = recent.size - 1
        return int(self.node_ids[recent[index]])


@dataclass
class _UserState:
    user: User
    volumes: dict[int, _VolumeState] = field(default_factory=dict)
    files: dict[int, _FileState] = field(default_factory=dict)
    pending_uploads: _PendingUploads = field(default_factory=_PendingUploads)
    #: Live-file columns; only users with active sessions get one (cold
    #: and auth-failing sessions never choose a file operand).
    table: _FileTable | None = None
    # Volume choice cache: (volume list, cumulative weights); rebuilt only
    # when the volume set changes (UDF creation/deletion is rare).
    volume_cache: tuple[list[_VolumeState], list[float]] | None = None
    #: The root volume id, cached for the per-event hot path (the root
    #: volume is created first and never deleted).
    root_id: int = 0

    def live_file_ids(self) -> list[int]:
        return list(self.files.keys())

    def udf_volume_ids(self) -> list[int]:
        return [v.volume_id for v in self.volumes.values()
                if v.volume_type is VolumeType.UDF]

    def root_volume_id(self) -> int:
        for volume in self.volumes.values():
            if volume.volume_type is VolumeType.ROOT:
                return volume.volume_id
        raise RuntimeError("user state has no root volume")


# ---------------------------------------------------------------------------
# Per-user materialization
# ---------------------------------------------------------------------------

def member_rng(seed: int, user_id: int) -> np.random.Generator:
    """The independent materialization stream of one plan member.

    A pure function of ``(seed, user_id)`` via the NumPy ``SeedSequence``
    spawn-key mechanism — no dependence on how many draws any other member
    (or the planning pass) made.
    """
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(_SPAWN_NAMESPACE, user_id))
    return np.random.default_rng(sequence)


# --- Batched member-stream derivation -------------------------------------
#
# ``member_rng`` costs ~14 us per user, nearly all of it inside NumPy's
# scalar ``SeedSequence`` entropy-mixing and state generation.  The mixing
# is a fixed sequence of uint32 hash steps, so deriving the PCG64 seeding
# words for *all* members of a batch is one vectorised pass over a
# ``(n_users,)`` lane per pool word.  The constants and update order below
# replicate ``np.random.SeedSequence`` exactly (pinned by
# ``tests/workload/test_generator.py::TestBatchedMemberRng``), and the
# derived streams are handed to ``PCG64`` through a tiny ``ISeedSequence``
# shim that still exposes ``entropy``/``spawn_key`` for the consumers that
# re-spawn child sequences from them (``RngPool.spawn``, the attack-episode
# draw memo).

_SS_INIT_A = 0x43b0d7e5
_SS_MULT_A = 0x931e8875
_SS_INIT_B = 0x8b51f9dd
_SS_MULT_B = 0x58f38ded
_SS_MIX_L = np.uint32(0xca01f9dd)
_SS_MIX_R = np.uint32(0x4973f715)
_SS_XSHIFT = np.uint32(16)
_SS_POOL_SIZE = 4
_U32_MASK = 0xFFFFFFFF


def _uint32_words(value: int) -> list[int]:
    """An integer as little-endian uint32 words (SeedSequence coercion)."""
    if value < 0:
        raise ValueError("entropy must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value:
        words.append(value & _U32_MASK)
        value >>= 32
    return words


def _batched_member_words(seed: int, user_ids: "list[int]") -> np.ndarray:
    """PCG64 seeding words for every member stream, in one vectorised pass.

    Returns a ``(len(user_ids), 4)`` uint64 array where row ``i`` equals
    ``SeedSequence(entropy=seed, spawn_key=(_SPAWN_NAMESPACE,
    user_ids[i])).generate_state(4, np.uint64)``.
    """
    uid = np.asarray(user_ids, dtype=np.uint32)
    # Assembled entropy: the seed's words zero-padded to the pool size (the
    # SeedSequence anti-collision rule when a spawn key is present), then
    # the namespace word and the user-id word.  Only the user-id lane
    # varies across the batch.
    seed_words = _uint32_words(seed)
    if len(seed_words) < _SS_POOL_SIZE:
        seed_words = seed_words + [0] * (_SS_POOL_SIZE - len(seed_words))
    assembled: list[np.ndarray] = [np.uint32(word) for word in seed_words]
    assembled.append(np.uint32(_SPAWN_NAMESPACE))
    assembled.append(uid)

    hash_const = [_SS_INIT_A]

    def hashmix(value):
        value = np.bitwise_xor(value, np.uint32(hash_const[0]))
        hash_const[0] = (hash_const[0] * _SS_MULT_A) & _U32_MASK
        value = np.multiply(value, np.uint32(hash_const[0]), dtype=np.uint32)
        return np.bitwise_xor(value, value >> _SS_XSHIFT)

    def mix(x, y):
        result = np.subtract(np.multiply(x, _SS_MIX_L, dtype=np.uint32),
                             np.multiply(y, _SS_MIX_R, dtype=np.uint32),
                             dtype=np.uint32)
        return np.bitwise_xor(result, result >> _SS_XSHIFT)

    pool = [hashmix(assembled[i] if i < len(assembled) else np.uint32(0))
            for i in range(_SS_POOL_SIZE)]
    for i_src in range(_SS_POOL_SIZE):
        for i_dst in range(_SS_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    for i_src in range(_SS_POOL_SIZE, len(assembled)):
        for i_dst in range(_SS_POOL_SIZE):
            pool[i_dst] = mix(pool[i_dst], hashmix(assembled[i_src]))

    hash_const[0] = _SS_INIT_B
    state = np.empty((2 * _SS_POOL_SIZE, uid.size), dtype=np.uint32)
    for i_dst in range(2 * _SS_POOL_SIZE):
        value = np.bitwise_xor(pool[i_dst % _SS_POOL_SIZE],
                               np.uint32(hash_const[0]))
        hash_const[0] = (hash_const[0] * _SS_MULT_B) & _U32_MASK
        value = np.multiply(value, np.uint32(hash_const[0]), dtype=np.uint32)
        state[i_dst] = np.bitwise_xor(value, value >> _SS_XSHIFT)
    # Pair adjacent uint32 words into uint64 exactly as generate_state's
    # ``.view(np.uint64)`` does on the contiguous word buffer.
    return np.ascontiguousarray(state.T).view(np.uint64)


class _PrecomputedSeedSequence(np.random.bit_generator.ISeedSequence):
    """A spawned member sequence whose seeding words are already derived.

    Quacks like the ``SeedSequence`` that ``member_rng`` builds — same
    ``entropy``/``spawn_key`` (consumed by ``RngPool.spawn`` and the
    attack-episode memo key), same ``generate_state(4, np.uint64)`` words
    (consumed by ``PCG64``) — without re-running the scalar entropy mixing.
    """

    __slots__ = ("entropy", "spawn_key", "pool_size", "_words")

    def __init__(self, entropy: int, spawn_key: tuple[int, ...],
                 words: np.ndarray) -> None:
        self.entropy = entropy
        self.spawn_key = spawn_key
        self.pool_size = _SS_POOL_SIZE
        self._words = words

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        if n_words == 4 and dtype is np.uint64:
            return self._words
        # Off-profile request (nothing in the tree does this): fall back to
        # the real sequence rather than extend the vectorised derivation.
        return np.random.SeedSequence(
            entropy=self.entropy,
            spawn_key=self.spawn_key).generate_state(n_words, dtype)


class MemberRngBatch:
    """Vectorised stand-in for per-member ``member_rng`` calls.

    Derives the PCG64 seeding words of every requested member in one
    array pass at construction; ``rng(user_id)`` then builds the member's
    generator in ~2 us instead of ~14 us.  Bit-identical to ``member_rng``
    by construction (see ``_batched_member_words``).
    """

    __slots__ = ("_seed", "_words")

    def __init__(self, seed: int, user_ids: "list[int]") -> None:
        self._seed = seed
        if user_ids and (min(user_ids) < 0 or max(user_ids) > _U32_MASK):
            # Ids outside the single-word coercion range (never produced by
            # the planner) would change the assembled-entropy layout; the
            # scalar path handles them.
            self._words = {}
        else:
            words = _batched_member_words(seed, user_ids)
            self._words = {user_id: words[i]
                           for i, user_id in enumerate(user_ids)}

    def rng(self, user_id: int) -> np.random.Generator:
        words = self._words.get(user_id)
        if words is None:
            return member_rng(self._seed, user_id)
        sequence = _PrecomputedSeedSequence(
            self._seed, (_SPAWN_NAMESPACE, user_id), words)
        return np.random.Generator(np.random.PCG64(sequence))


class UserMaterializer:
    """Materializes one user's planned sessions into concrete scripts.

    All randomness comes from the user's own spawned stream (one
    :class:`RngPool` shared with the per-user file/operation/gap models), and
    all allocated identifiers live in the user's namespaces, so the produced
    scripts are a pure function of ``(config, user plan, popular pool)``.
    """

    def __init__(self, config: WorkloadConfig, user: User,
                 popular_pool: PopularContentPool | None,
                 diurnal: DiurnalProfile,
                 rng: np.random.Generator | None = None):
        self.config = config
        self.user = user
        if rng is None:
            rng = member_rng(config.seed, user.user_id)
        # One pool shared by every per-user model, with a small block: most
        # users draw a few dozen scalars, so a 4096-draw refill per user
        # would generate ~100x more random bits than the workload consumes.
        pool = RngPool(rng, block=256)
        self._rng = rng
        self._pool = pool
        self._diurnal = diurnal
        self._popular_pool = popular_pool
        # The file and gap models are built on demand (_ensure_models):
        # most users plan cold/auth-failing sessions only, which touch no
        # files and draw no operation gaps — their materialization skips
        # the model setup and the pre-existing-file draws entirely (both
        # are unobservable without an active session, and the skip depends
        # only on the plan, so determinism is unaffected).
        self._file_model: FileModel | None = None
        self._gaps: BurstGapSampler | None = None
        self._id_base = user.user_id << _ID_BITS
        self._next_local_node = 0
        self._next_local_volume = 0
        self._update_attempt = min(config.update_fraction
                                   * _UPDATE_ATTEMPT_BOOST, 0.95)
        # Per-session pre-drawn operand streams (see _build_active): one
        # block per operation type, consumed positionally by the dispatch.
        self._up_rolls = iter(())
        self._up_pick_u = iter(())
        self._dl_rolls = iter(())
        self._dl_pick_u = iter(())
        self._mk_rolls = iter(())
        self._file_feed = iter(())

    def _ensure_models(self) -> None:
        """Build the per-user file/gap models (first active session)."""
        if self._file_model is not None:
            return
        config = self.config
        self._file_model = FileModel(
            self._pool,
            duplicate_fraction=config.duplicate_fraction,
            duplicate_zipf_exponent=config.duplicate_zipf_exponent,
            max_size_bytes=config.max_file_bytes,
            shared_pool=self._popular_pool,
            hash_namespace=f"u{self.user.user_id:x}-",
        )
        self._gaps = BurstGapSampler(self._pool, alpha=config.burst_alpha,
                                     theta=config.burst_theta,
                                     cap=config.burst_cap)

    # ------------------------------------------------------------------ ids
    def _new_node_id(self) -> int:
        self._next_local_node += 1
        return self._id_base + self._next_local_node

    def _new_volume_id(self) -> int:
        self._next_local_volume += 1
        return self._id_base + self._next_local_volume

    # -------------------------------------------------------- initial state
    def _init_user_state(self, with_files: bool = True) -> _UserState:
        user = self.user
        state = _UserState(user=user)
        root = _VolumeState(volume_id=self._new_volume_id(),
                            volume_type=VolumeType.ROOT)
        state.volumes[root.volume_id] = root
        state.root_id = root.volume_id
        user.volume_ids.append(root.volume_id)
        for _ in range(user.udf_volumes):
            udf = _VolumeState(volume_id=self._new_volume_id(),
                               volume_type=VolumeType.UDF)
            state.volumes[udf.volume_id] = udf
            user.volume_ids.append(udf.volume_id)
        for _ in range(user.shared_volumes):
            shared = _VolumeState(volume_id=self._new_volume_id(),
                                  volume_type=VolumeType.SHARED)
            state.volumes[shared.volume_id] = shared
            user.volume_ids.append(shared.volume_id)

        # Pre-existing files (uploaded before the measurement window) so that
        # download-only users have something to read and RAR dependencies are
        # possible without a preceding in-trace write.  Drawn as one block:
        # contents/sizes/extensions from the file model's vectorised sampler,
        # volume assignments from one cumulative-weight search.  Skipped for
        # users without active sessions (``with_files=False``): cold and
        # auth-failing sessions never reference a file.
        if not with_files:
            return state
        state.table = _FileTable()
        if user.user_class is not UserClass.OCCASIONAL:
            expected = 4.0 * (1.0 + min(user.activity_weight, 20.0))
            n_files = int(self._rng.poisson(expected))
        else:
            n_files = int(self._rng.poisson(0.5))
        if n_files:
            created = self.config.start_time - 1.0
            entries = self._file_model.sample_new_files(n_files)
            volumes, cumulative = self._volume_tables(state)
            picks = np.searchsorted(
                np.asarray(cumulative),
                self._rng.random(n_files) * cumulative[-1], side="right")
            np.clip(picks, 0, len(volumes) - 1, out=picks)
            node_ids: list[int] = []
            sizes: list[int] = []
            files = state.files
            for volume_index, (content_hash, size, extension) in zip(
                    picks.tolist(), entries):
                volume = volumes[volume_index]
                node_id = self._new_node_id()
                files[node_id] = _FileState(
                    node_id=node_id, volume_id=volume.volume_id,
                    volume_type=volume.volume_type, size_bytes=size,
                    content_hash=content_hash, extension=extension,
                    created=created, last_write=created)
                volume.file_ids.add(node_id)
                node_ids.append(node_id)
                sizes.append(size)
            state.table.add_block(node_ids, created, sizes)
        return state

    def _volume_tables(self, state: _UserState) -> tuple[list[_VolumeState], list[float]]:
        cache = state.volume_cache
        if cache is None:
            volumes = list(state.volumes.values())
            cumulative: list[float] = []
            total = 0.0
            for volume in volumes:
                total += 3.0 if volume.volume_type is VolumeType.ROOT else 1.0
                cumulative.append(total)
            cache = (volumes, cumulative)
            state.volume_cache = cache
        return cache

    def _pick_volume(self, state: _UserState) -> _VolumeState:
        volumes, cumulative = self._volume_tables(state)
        if len(volumes) == 1:
            return volumes[0]
        u = self._pool.random() * cumulative[-1]
        for volume, bound in zip(volumes, cumulative):
            if u < bound:
                return volume
        return volumes[-1]

    def _create_file(self, state: _UserState, created: float) -> _FileState:
        volume = self._pick_volume(state)
        # In-session creates consume the session's pre-drawn file-entry
        # feed (upper-bounded by the ops that can create files); the
        # fallback only fires for callers outside a session build.
        entry = next(self._file_feed, None)
        if entry is None:
            entry = self._file_model.sample_new_file()
        content_hash, size, extension = entry
        file_state = _FileState(
            node_id=self._new_node_id(),
            volume_id=volume.volume_id,
            volume_type=volume.volume_type,
            size_bytes=size,
            content_hash=content_hash,
            extension=extension,
            created=created,
            last_write=created,
        )
        state.files[file_state.node_id] = file_state
        state.table.add(file_state.node_id, created, size)
        volume.file_ids.add(file_state.node_id)
        return file_state

    def _drop_file(self, state: _UserState, node_id: int) -> None:
        state.files.pop(node_id, None)
        state.table.remove(node_id)
        state.pending_uploads.discard(node_id)

    # -------------------------------------------------------- operand logic
    def _weighted_file_choice(self, state: _UserState, now: float,
                              favour_recent_writes: bool,
                              favour_popular: bool,
                              favour_large: bool,
                              penalise_already_synced: bool = False) -> _FileState | None:
        node_id = state.table.pick_weighted(
            now, self._pool.random(),
            favour_recent_writes=favour_recent_writes,
            favour_popular=favour_popular, favour_large=favour_large,
            penalise_already_synced=penalise_already_synced)
        return None if node_id is None else state.files[node_id]

    def _pick_update_target(self, state: _UserState, now: float) -> _FileState | None:
        """Choose the file an update rewrites.

        Updates disproportionately hit larger, recently and frequently
        edited files (documents under revision, tagged media) — the editing
        bursts that chain into the WAW dependencies of Fig. 3a; they also
        account for ~18.5 % of upload bytes while being only ~10 % of
        uploads.
        """
        node_id = state.table.pick_update(now, next(self._up_pick_u))
        return None if node_id is None else state.files[node_id]

    def _pick_download_target(self, state: _UserState, now: float) -> _FileState | None:
        """Choose the file a download reads.

        U1 is backup-flavoured: most uploads are never read back, and the
        downloads that do happen are dominated by repeated reads of popular
        content (the RAR dependencies and the per-file download tail of
        Fig. 3b) and by new content appearing from other devices or shares.
        Only a modest share synchronises just-written files — which is what
        keeps WAW, not RAW, the most common same-file dependency (Fig. 3a).
        """
        roll = next(self._dl_rolls)
        if roll < _DL_SYNC_SHARE:
            node_id = state.table.pick_unsynced(now, next(self._dl_pick_u))
            if node_id is not None:
                return state.files[node_id]
        if state.files and roll < _DL_KNOWN_SHARE:
            node_id = state.table.pick_reread(next(self._dl_pick_u))
            if node_id is not None:
                return state.files[node_id]
        # New remote content (another device or a share) appears and is synced.
        return self._create_file(state, created=now)

    def _materialize(self, state: _UserState, op: int, t: float,
                     cols: tuple[list, ...]) -> None:
        """Turn one chain-state index into event columns, updating state.

        Dispatches on the small-integer chain state (most frequent branches
        first); every stochastic choice consumes the session's pre-drawn
        operand blocks, while the table/pending-upload/volume bookkeeping —
        the truly state-dependent residue — stays scalar.  The event is
        emitted by appending one scalar per struct-of-arrays column of the
        session's :class:`EventBlock` (``cols``); operations that resolve
        to nothing (empty table, tombstoned pending upload) append nothing.
        """
        (c_time, c_op, c_node, c_vol, c_vtype, c_kind, c_size, c_hash,
         c_ext, c_upd) = cols
        user = state.user

        if op == _OP_DOWNLOAD:
            target = self._pick_download_target(state, t)
            if target is None:
                c_time.append(t); c_op.append(ApiOperation.GET_DELTA)
                c_node.append(0); c_vol.append(state.root_id)
                c_vtype.append(VolumeType.ROOT); c_kind.append(NodeKind.FILE)
                c_size.append(0); c_hash.append(""); c_ext.append("")
                c_upd.append(False)
                return
            target.last_read = t
            target.reads += 1
            state.table.touch_read(target.node_id, t)
            c_time.append(t); c_op.append(ApiOperation.DOWNLOAD)
            c_node.append(target.node_id); c_vol.append(target.volume_id)
            c_vtype.append(target.volume_type); c_kind.append(NodeKind.FILE)
            c_size.append(target.size_bytes)
            c_hash.append(target.content_hash); c_ext.append(target.extension)
            c_upd.append(False)
            return

        if op == _OP_UPLOAD:
            update_target = None
            if state.files and next(self._up_rolls) < self._update_attempt:
                update_target = self._pick_update_target(state, t)
            if update_target is not None \
                    and update_target.node_id not in state.pending_uploads:
                new_hash, new_size = self._file_model.sample_updated_content(
                    update_target.extension, update_target.size_bytes)
                update_target.content_hash = new_hash
                update_target.size_bytes = new_size
                update_target.last_write = t
                update_target.writes += 1
                state.table.touch_write(update_target.node_id, t, new_size)
                c_time.append(t); c_op.append(ApiOperation.UPLOAD)
                c_node.append(update_target.node_id)
                c_vol.append(update_target.volume_id)
                c_vtype.append(update_target.volume_type)
                c_kind.append(NodeKind.FILE)
                c_size.append(new_size); c_hash.append(new_hash)
                c_ext.append(update_target.extension); c_upd.append(True)
                return
            if state.pending_uploads:
                node_id = state.pending_uploads.popleft()
                file_state = state.files.get(node_id)
                if file_state is None:
                    return
                file_state.last_write = t
                state.table.touch_write(node_id, t)
            else:
                file_state = self._create_file(state, created=t)
            c_time.append(t); c_op.append(ApiOperation.UPLOAD)
            c_node.append(file_state.node_id)
            c_vol.append(file_state.volume_id)
            c_vtype.append(file_state.volume_type); c_kind.append(NodeKind.FILE)
            c_size.append(file_state.size_bytes)
            c_hash.append(file_state.content_hash)
            c_ext.append(file_state.extension); c_upd.append(False)
            return

        if op == _OP_MAKE:
            if next(self._mk_rolls) < 0.30:
                volume = self._pick_volume(state)
                volume.directory_count += 1
                c_time.append(t); c_op.append(ApiOperation.MAKE)
                c_node.append(self._new_node_id())
                c_vol.append(volume.volume_id)
                c_vtype.append(volume.volume_type)
                c_kind.append(NodeKind.DIRECTORY)
                c_size.append(0); c_hash.append(""); c_ext.append("")
                c_upd.append(False)
                return
            file_state = self._create_file(state, created=t)
            state.pending_uploads.append(file_state.node_id)
            c_time.append(t); c_op.append(ApiOperation.MAKE)
            c_node.append(file_state.node_id)
            c_vol.append(file_state.volume_id)
            c_vtype.append(file_state.volume_type); c_kind.append(NodeKind.FILE)
            c_size.append(0); c_hash.append(""); c_ext.append("")
            c_upd.append(False)
            return

        if op == _OP_UNLINK:
            if not state.files:
                return
            target = None
            if self._pool.random() < self.config.short_lived_file_fraction:
                node_id = state.table.pick_recent_created(t, 8 * HOUR,
                                                          self._pool.random())
                if node_id is not None:
                    target = state.files[node_id]
            if target is None:
                target = self._weighted_file_choice(state, t, favour_recent_writes=False,
                                                    favour_popular=False, favour_large=False)
            if target is None:
                return
            self._drop_file(state, target.node_id)
            volume = state.volumes.get(target.volume_id)
            if volume is not None:
                volume.file_ids.discard(target.node_id)
            c_time.append(t); c_op.append(ApiOperation.UNLINK)
            c_node.append(target.node_id); c_vol.append(target.volume_id)
            c_vtype.append(target.volume_type); c_kind.append(NodeKind.FILE)
            c_size.append(0); c_hash.append(""); c_ext.append(target.extension)
            c_upd.append(False)
            return

        if op == _OP_MOVE:
            target = self._weighted_file_choice(state, t, favour_recent_writes=False,
                                                favour_popular=False, favour_large=False)
            if target is None:
                return
            c_time.append(t); c_op.append(ApiOperation.MOVE)
            c_node.append(target.node_id); c_vol.append(target.volume_id)
            c_vtype.append(target.volume_type); c_kind.append(NodeKind.FILE)
            c_size.append(0); c_hash.append(""); c_ext.append(target.extension)
            c_upd.append(False)
            return

        if op == _OP_CREATE_UDF:
            udf = _VolumeState(volume_id=self._new_volume_id(),
                               volume_type=VolumeType.UDF)
            state.volumes[udf.volume_id] = udf
            state.volume_cache = None
            user.volume_ids.append(udf.volume_id)
            c_time.append(t); c_op.append(ApiOperation.CREATE_UDF)
            c_node.append(0); c_vol.append(udf.volume_id)
            c_vtype.append(VolumeType.UDF); c_kind.append(NodeKind.DIRECTORY)
            c_size.append(0); c_hash.append(""); c_ext.append("")
            c_upd.append(False)
            return

        if op == _OP_DELETE_VOLUME:
            udf_ids = state.udf_volume_ids()
            if not udf_ids:
                return
            volume_id = udf_ids[self._pool.integers(len(udf_ids))]
            volume = state.volumes.pop(volume_id)
            state.volume_cache = None
            for node_id in volume.file_ids:
                self._drop_file(state, node_id)
            c_time.append(t); c_op.append(ApiOperation.DELETE_VOLUME)
            c_node.append(0); c_vol.append(volume_id)
            c_vtype.append(VolumeType.UDF); c_kind.append(NodeKind.DIRECTORY)
            c_size.append(0); c_hash.append(""); c_ext.append("")
            c_upd.append(False)
            return

        # Maintenance operations carry no operand beyond the root volume.
        c_time.append(t); c_op.append(CHAIN_OPS[op])
        c_node.append(0); c_vol.append(state.root_id)
        c_vtype.append(VolumeType.ROOT); c_kind.append(NodeKind.FILE)
        c_size.append(0); c_hash.append(""); c_ext.append("")
        c_upd.append(False)

    # ------------------------------------------------------------- sessions
    def _build_session(self, state: _UserState, spec: SessionSpec) -> SessionScript:
        if spec.auth_fails:
            # Failed authentications never establish a session; the script is
            # kept (it still hits the auth service) but carries no events.
            return SessionScript(user_id=self.user.user_id,
                                 session_id=spec.session_id,
                                 start=spec.start, end=spec.end,
                                 auth_failed=True)
        if spec.active:
            block = self._build_active(state, spec)
        else:
            block = self._build_cold(state, spec)
        return SessionScript(user_id=self.user.user_id,
                             session_id=spec.session_id,
                             start=spec.start, end=spec.end, block=block)

    def _build_cold(self, state: _UserState, spec: SessionSpec) -> EventBlock:
        """Cold session: occasional maintenance polls so that long idle
        sessions still register as "online" activity."""
        pool = self._pool
        end = spec.end
        times: list[float] = []
        operations: list[ApiOperation] = []
        get_delta = ApiOperation.GET_DELTA
        query_caps = ApiOperation.QUERY_SET_CAPS
        t = spec.start + 1.0
        while t < end:
            operations.append(get_delta if pool.random() < 0.6
                              else query_caps)
            times.append(t)
            t += 4 * HOUR + 6 * HOUR * pool.random()
        # Maintenance polls touch nothing but the root volume: every other
        # column is one scalar constant for the whole block.
        return EventBlock(times=times, operations=operations,
                          volume_ids=state.root_id)

    def _build_active(self, state: _UserState,
                      spec: SessionSpec) -> EventBlock:
        """Materialize an active session from array-drawn structure.

        The session's stochastic skeleton is drawn up front instead of
        event by event: every inter-operation gap comes from one
        ``sample_many`` block, the whole timeline (and its truncation at
        the session end) is one cumulative sum, the per-step download
        biases are one vectorised diurnal evaluation, and the operation
        sequence is an inverse-CDF walk over the user class's compiled
        transition tables driven by one pre-drawn uniform block.  The
        remaining per-event work — operand choice against the live file
        table, volume bookkeeping, pending-upload coupling — consumes
        per-type pre-drawn operand blocks inside the dispatch loop.
        """
        pool = self._pool
        rng = self._rng
        end = spec.end
        t0 = spec.start + 0.2 + 2.8 * pool.random()
        n = spec.n_ops
        if n > 1:
            times = np.empty(n)
            times[0] = 0.0
            np.cumsum(self._gaps.sample_many(n - 1), out=times[1:])
            times += t0
            k = int(np.searchsorted(times, end))
        else:
            times = np.full(1, t0)
            k = 1 if t0 < end else 0
        if k == 0:
            return EventBlock(times=[], operations=[])
        if k < n:
            times = times[:k]
        user = self.user
        allow_volume_ops = user.udf_volumes > 0 or pool.random() < 0.3
        chain = compiled_chain(user.user_class, allow_volume_ops)
        ops = chain.walk(pool.random(), rng.random(k - 1),
                         self._diurnal.download_bias_array(times[1:]))
        counts = np.bincount(ops, minlength=len(CHAIN_OPS)).tolist()
        n_uploads = counts[_OP_UPLOAD]
        n_downloads = counts[_OP_DOWNLOAD]
        n_makes = counts[_OP_MAKE]
        # One uniform block covers every typed operand stream of the
        # session: update rolls + pick selectors per upload, target rolls +
        # two pick selectors per download, directory rolls per make.
        block = rng.random(2 * n_uploads + 3 * n_downloads + n_makes).tolist()
        stop_up = 2 * n_uploads
        stop_dl = stop_up + 3 * n_downloads
        self._up_rolls = iter(block[:n_uploads])
        self._up_pick_u = iter(block[n_uploads:stop_up])
        self._dl_rolls = iter(block[stop_up:stop_up + n_downloads])
        self._dl_pick_u = iter(block[stop_up + n_downloads:stop_dl])
        self._mk_rolls = iter(block[stop_dl:])
        # Pre-drawn file entries for the session's creates, sized to the
        # *expected* creation mix (file-makes ~70 % of makes, fresh remote
        # content ~2/5 of downloads) plus slack; the draws are i.i.d., so
        # consuming a prefix — or falling back to scalar draws once the
        # feed runs dry — leaves the per-file distribution unchanged.
        n_creates = n_makes + (2 * n_downloads) // 5 + 8
        self._file_feed = iter(self._file_model.sample_new_files(n_creates))
        root = state.root_id
        chain_ops = CHAIN_OPS
        cols: tuple[list, ...] = tuple([] for _ in range(10))
        (c_time, c_op, c_node, c_vol, c_vtype, c_kind, c_size, c_hash,
         c_ext, c_upd) = cols
        root_type = VolumeType.ROOT
        file_kind = NodeKind.FILE
        materialize = self._materialize
        for t, op in zip(times.tolist(), ops):
            if op < _FIRST_STATEFUL:
                # Maintenance operations touch no operand state at all;
                # emit their columns inline instead of paying the dispatch.
                c_time.append(t); c_op.append(chain_ops[op])
                c_node.append(0); c_vol.append(root)
                c_vtype.append(root_type); c_kind.append(file_kind)
                c_size.append(0); c_hash.append(""); c_ext.append("")
                c_upd.append(False)
                continue
            materialize(state, op, t, cols)
        return EventBlock(times=c_time, operations=c_op, node_ids=c_node,
                          volume_ids=c_vol, volume_types=c_vtype,
                          node_kinds=c_kind, size_bytes=c_size,
                          content_hashes=c_hash, extensions=c_ext,
                          is_updates=c_upd)

    # ------------------------------------------------------------------ API
    def materialize(self, plan: UserPlan) -> list[SessionScript]:
        """All of this user's session scripts, in chronological order."""
        has_active = any(spec.active for spec in plan.sessions)
        if has_active:
            self._ensure_models()
        state = self._init_user_state(with_files=has_active)
        scripts = []
        for spec in plan.sessions:
            script = self._build_session(state, spec)
            script.member_planned_ops = plan.planned_ops
            scripts.append(script)
        return scripts


def _materialize_attack(config: WorkloadConfig, plan: AttackPlan,
                        rng: np.random.Generator | None = None
                        ) -> list[SessionScript]:
    """Materialize one DDoS episode slice from the attacker's own stream."""
    if rng is None:
        rng = member_rng(config.seed, plan.episode.attacker_user_id)
    return list(plan.episode.generate_sessions(
        rng, plan.baseline_sessions_per_hour,
        plan.baseline_storage_ops_per_hour,
        session_id_start=plan.session_id_start,
        member_planned_ops=plan.planned_ops,
        session_range=plan.sessions_slice))


def _member_user_id(plan: WorkloadPlan, index: int) -> int:
    """The stream-owning user id of one plan member (user or attacker)."""
    n_users = len(plan.users)
    if index < n_users:
        return plan.users[index].user.user_id
    return plan.attacks[index - n_users].episode.attacker_user_id


def materialize_member(plan: WorkloadPlan, index: int,
                       diurnal: DiurnalProfile | None = None,
                       rng_batch: MemberRngBatch | None = None
                       ) -> list[SessionScript]:
    """Materialize one plan member (user or attack slice) into scripts."""
    config = plan.config
    n_users = len(plan.users)
    if index < n_users:
        user_plan = plan.users[index]
        if not user_plan.sessions:
            # No sessions -> no scripts; skip building the materializer (the
            # user's stream is independent, so skipping draws nothing).
            return []
        if diurnal is None:
            diurnal = DiurnalProfile(
                peak_to_trough=config.diurnal_peak_to_trough,
                weekend_factor=config.weekend_factor)
        rng = (rng_batch.rng(user_plan.user.user_id)
               if rng_batch is not None else None)
        materializer = UserMaterializer(config, user_plan.user,
                                        plan.popular_pool, diurnal, rng=rng)
        scripts = materializer.materialize(user_plan)
    else:
        attack_plan = plan.attacks[index - n_users]
        rng = (rng_batch.rng(attack_plan.episode.attacker_user_id)
               if rng_batch is not None else None)
        scripts = _materialize_attack(config, attack_plan, rng=rng)
    for script in scripts:
        script.plan_member = index
    return scripts


def _script_order(script: SessionScript) -> tuple[float, int]:
    """Canonical script order: ``(start, session_id)``.

    Session ids are globally unique and allocated by the plan, so this is a
    total order — materializing any partition of the members and sorting
    each part yields per-shard streams whose stable merge equals the
    unsharded generator output, independent of partition shape.
    """
    return (script.start, script.session_id)


def materialize_members(plan: WorkloadPlan,
                        members: Sequence[int] | None = None) -> list[SessionScript]:
    """Materialize plan members (default: all) sorted in canonical order."""
    config = plan.config
    diurnal = DiurnalProfile(peak_to_trough=config.diurnal_peak_to_trough,
                             weekend_factor=config.weekend_factor)
    indices = range(plan.n_members) if members is None else members
    # One vectorised derivation covers every member stream of the batch
    # (duplicate ids — a user appearing in several attack slices — cost one
    # derivation each way, so dict-deduping them is free and harmless).
    member_ids = sorted({_member_user_id(plan, index) for index in indices})
    rng_batch = MemberRngBatch(config.seed, member_ids)
    scripts: list[SessionScript] = []
    for index in indices:
        scripts.extend(materialize_member(plan, index, diurnal=diurnal,
                                          rng_batch=rng_batch))
    scripts.sort(key=_script_order)
    return scripts


# ---------------------------------------------------------------------------
# The generator façade: global planning + convenience materialization
# ---------------------------------------------------------------------------

class SyntheticTraceGenerator:
    """Generates a synthetic U1 workload from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig):
        config.validate()
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._pool = RngPool(self._rng)
        self._diurnal = DiurnalProfile(
            peak_to_trough=config.diurnal_peak_to_trough,
            weekend_factor=config.weekend_factor,
        )
        # Plan-time file model: mints the shared popular-content pool every
        # per-user materializer duplicates from.
        self._file_model = FileModel(
            self._pool,
            duplicate_fraction=config.duplicate_fraction,
            duplicate_zipf_exponent=config.duplicate_zipf_exponent,
            max_size_bytes=config.max_file_bytes,
            hash_namespace="pop-",
        )
        self._session_model = SessionModel(config, self._rng, self._diurnal)
        self._population = build_population(config, self._rng)

    @property
    def population(self) -> list[User]:
        """The synthetic user population."""
        return self._population

    # ------------------------------------------------------------- planning
    def _sample_ops_count(self, user: User) -> int:
        base = self.config.mean_ops_per_active_session
        weight_factor = 0.5 + min(user.activity_weight, 50.0)
        heavy_tail = self._pool.pareto(1.15) + 0.3
        count = int(base * heavy_tail * weight_factor / 5.0) + 1
        return min(count, self.config.max_ops_per_session)

    def plan(self) -> WorkloadPlan:
        """The global planning pass (see :mod:`repro.workload.plan`).

        Consumes the generator's root RNG stream, so each call plans a fresh
        (equally likely) realisation; everything downstream of the returned
        plan — materialization, sharding, replay — is deterministic in it.
        """
        with cyclic_gc_paused():
            return self._plan()

    def _plan(self) -> WorkloadPlan:
        config = self.config
        user_plans: list[UserPlan] = []
        session_id = 0
        planned_storage_ops = 0.0
        # Expected inter-operation gap E[min(pareto(alpha, theta), cap)]:
        # sessions stop materializing operations when the pre-drawn timeline
        # passes their end, so the *expected realized* operation count of an
        # active session is min(n_ops, 1 + length / E[gap]) — using the raw
        # drawn n_ops would overweight long heavy-tail draws that a short
        # session truncates, inflating both the attack-rate baseline and the
        # LPT weights.  The formula matches the block-drawn gap stream
        # (sample_many) exactly: truncation by cumulative-sum cutoff realises
        # the same per-gap distribution as the historical scalar loop.
        mean_gap = BurstGapSampler.mean_truncated_gap(
            config.burst_alpha, config.burst_theta, config.burst_cap)
        for user in self._population:
            specs: list[SessionSpec] = []
            weight = 0.0
            for p in self._session_model.plan_user_sessions(user):
                session_id += 1
                n_ops = 0
                if p.auth_fails:
                    weight += 0.25
                elif p.active:
                    n_ops = self._sample_ops_count(user)
                    expected = min(float(n_ops), 1.0 + p.length / mean_gap)
                    weight += 1.0 + expected
                    planned_storage_ops += expected
                else:
                    # Cold sessions only poll every 4-10 h; weigh them by the
                    # expected number of maintenance interactions.
                    weight += 1.0 + p.length / (7.0 * HOUR)
                specs.append(SessionSpec(session_id=session_id, start=p.start,
                                         length=p.length, active=p.active,
                                         auth_fails=p.auth_fails, n_ops=n_ops))
            user_plans.append(UserPlan(user=user, sessions=tuple(specs),
                                       planned_ops=weight))

        # Attack episodes are scaled from the *planned* legitimate baseline
        # (the realized baseline is not known before materialization, which
        # now happens inside the replay workers).
        duration_hours = max(config.duration_days * 24.0, 1e-9)
        legit_sessions_per_hour = max(session_id / duration_hours, 1.0)
        legit_storage_per_hour = max(planned_storage_ops / duration_hours, 1.0)
        episodes = build_attack_episodes(
            config,
            first_attacker_id=config.n_users + 1,
            first_node_id=10_000_000,
            first_volume_id=10_000_000,
        )
        attack_plans: list[AttackPlan] = []
        for episode in episodes:
            n_sessions, n_storage_ops = episode.planned_size(
                legit_sessions_per_hour, legit_storage_per_hour)
            # Cut the episode into session-range slices — independent plan
            # members the LPT assignment can spread across shards, so one
            # botnet flood no longer defines the replay's critical path.
            n_slices = max(1, (n_sessions + _ATTACK_SLICE_SESSIONS - 1)
                           // _ATTACK_SLICE_SESSIONS)
            bounds = [round(k * n_sessions / n_slices)
                      for k in range(n_slices + 1)]
            episode_weight = float(n_sessions + n_storage_ops)
            for k in range(n_slices):
                lo, hi = bounds[k], bounds[k + 1]
                share = (hi - lo) / n_sessions
                attack_plans.append(AttackPlan(
                    episode=episode,
                    baseline_sessions_per_hour=legit_sessions_per_hour,
                    baseline_storage_ops_per_hour=legit_storage_per_hour,
                    session_id_start=session_id,
                    sessions_slice=(lo, hi),
                    n_storage_ops=round(n_storage_ops * share),
                    planned_ops=episode_weight * share))
            session_id += n_sessions

        # Shared popular-content pool, sized to the planned workload (the
        # lazy-growth model minted roughly 0.3 entries per duplicate draw).
        expected_creations = 0.5 * planned_storage_ops + 8.0 * len(self._population)
        pool_size = int(0.3 * config.duplicate_fraction * expected_creations)
        pool_size = max(32, min(pool_size, 200_000))
        popular_pool = PopularContentPool.build(
            self._file_model, pool_size,
            zipf_exponent=config.duplicate_zipf_exponent)

        return WorkloadPlan(config=config, users=tuple(user_plans),
                            attacks=tuple(attack_plans),
                            popular_pool=popular_pool)

    # ------------------------------------------------------------------ API
    def client_events(self) -> list[SessionScript]:
        """Generate every session script of the measurement window.

        Equivalent to planning and materializing every member in-process:
        the result is sorted by ``(start, session_id)`` and includes both
        the legitimate workload and the configured DDoS episodes.
        Generation is a cycle-free bulk allocation, so the cyclic garbage
        collector is paused for the duration (see :mod:`repro.util.gctools`).
        """
        with cyclic_gc_paused():
            return materialize_members(self._plan())

    # ------------------------------------------------------------ rendering
    def _placement(self) -> tuple[str, int]:
        """Random (machine, process) placement used when no simulator runs."""
        machine = self._pool.integers(self.config.api_machines)
        process = self._pool.integers(self.config.processes_per_machine)
        return f"api{machine}", process

    def generate(self) -> TraceDataset:
        """Render the workload directly into a :class:`TraceDataset`.

        The records produced here carry client-observable information only
        (no RPC decomposition, no service times); analyses of the metadata
        back-end (Figs. 12-14) require running the same scripts through
        :class:`repro.backend.cluster.U1Cluster` instead.
        """
        dataset = TraceDataset()
        shards = self.config.metadata_shards
        # Row-append fast paths (positional record-field order); record
        # objects are only built if an analysis iterates the dataset.
        session_row = dataset.append_session_row
        storage_row = dataset.append_storage_row
        for script in self.client_events():
            server, process = self._placement()
            shard_id = script.user_id % shards
            user_id = script.user_id
            session_id = script.session_id
            attack = script.caused_by_attack
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.AUTH_REQUEST, attack, -1.0, 0)
            if script.auth_failed:
                session_row(script.start, server, process, user_id, session_id,
                            SessionEvent.AUTH_FAIL, attack, -1.0, 0)
                continue
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.AUTH_OK, attack, -1.0, 0)
            session_row(script.start, server, process, user_id, session_id,
                        SessionEvent.CONNECT, attack, -1.0, 0)
            for event in script.events:
                storage_row(event.time, server, process, event.user_id,
                            event.session_id, event.operation, event.node_id,
                            event.volume_id, event.volume_type, event.node_kind,
                            event.size_bytes, event.content_hash,
                            event.extension, event.is_update, shard_id,
                            event.caused_by_attack, "", 0)
            session_row(script.end, server, process, user_id, session_id,
                        SessionEvent.DISCONNECT, attack, script.length,
                        script.storage_operation_count)
        dataset.sort()
        return dataset
