"""Client events: the interface between the workload and the back-end.

The generator produces a time-ordered stream of client actions describing
what desktop clients do (open/close sessions, upload, download, make,
unlink, ...).  The back-end simulator consumes this stream and turns it
into trace records enriched with server placement, RPC decomposition and
service times; alternatively the generator itself can map the events onto
records for analyses that do not need back-end detail.

Since the columnar rework the canonical storage is :class:`EventBlock` — a
struct-of-arrays container with one column per event field, hung off each
:class:`SessionScript`.  The materializer appends scalars straight into the
columns and the replay engine dispatches straight out of them, so no
per-event object is built on the hot path.  :class:`ClientEvent` remains the
scalar view: ``script.events`` hydrates objects from the block on first
access, which keeps hand-built scripts, tests and slow paths working
unchanged.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.records import ApiOperation, NodeKind, VolumeType

__all__ = ["ClientEvent", "EventBlock", "SessionScript"]


class ClientEvent:
    """A single client action at a point in time.

    ``node_id``/``volume_id`` are client-chosen identifiers that remain
    stable across the life of a file or volume, which is what the per-file
    analyses (Fig. 3) need.  ``size_bytes``, ``content_hash``, ``extension``
    and ``is_update`` are only meaningful for transfer operations.
    """

    __slots__ = ("time", "user_id", "session_id", "operation", "node_id",
                 "volume_id", "volume_type", "node_kind", "size_bytes",
                 "content_hash", "extension", "is_update", "caused_by_attack")

    def __init__(self, time: float, user_id: int, session_id: int,
                 operation: ApiOperation, node_id: int = 0,
                 volume_id: int = 0,
                 volume_type: VolumeType = VolumeType.ROOT,
                 node_kind: NodeKind = NodeKind.FILE,
                 size_bytes: int = 0, content_hash: str = "",
                 extension: str = "", is_update: bool = False,
                 caused_by_attack: bool = False) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self.time = time
        self.user_id = user_id
        self.session_id = session_id
        self.operation = operation
        self.node_id = node_id
        self.volume_id = volume_id
        self.volume_type = volume_type
        self.node_kind = node_kind
        self.size_bytes = size_bytes
        self.content_hash = content_hash
        self.extension = extension
        self.is_update = is_update
        self.caused_by_attack = caused_by_attack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)!r}"
                           for name in self.__slots__)
        return f"ClientEvent({fields})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClientEvent):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self.__slots__)

    def __hash__(self) -> int:
        return hash((self.time, self.user_id, self.session_id,
                     self.operation, self.node_id))

    @property
    def is_transfer(self) -> bool:
        """True for uploads and downloads."""
        return self.operation.is_transfer


#: Per-event columns of an :class:`EventBlock`, in hydration order.
EVENT_COLUMNS = ("times", "operations", "node_ids", "volume_ids",
                 "volume_types", "node_kinds", "size_bytes",
                 "content_hashes", "extensions", "is_updates")


class EventBlock:
    """Struct-of-arrays storage for one script's events.

    One column per :class:`ClientEvent` field (``user_id``/``session_id``
    live on the owning script, ``caused_by_attack`` is constant per script).
    A column is either a list of length ``n`` or a scalar meaning "this
    value for every event" — attack episodes, for example, vary only in
    time and upload flag, so nine of their ten columns are scalars and the
    block costs O(1) per event to build.  :meth:`columns` broadcasts the
    scalars into lists for the replay dispatch loop.
    """

    __slots__ = EVENT_COLUMNS + ("caused_by_attack",)

    def __init__(self, times: list[float],
                 operations: "list[ApiOperation] | ApiOperation",
                 node_ids: "list[int] | int" = 0,
                 volume_ids: "list[int] | int" = 0,
                 volume_types: "list[VolumeType] | VolumeType" = VolumeType.ROOT,
                 node_kinds: "list[NodeKind] | NodeKind" = NodeKind.FILE,
                 size_bytes: "list[int] | int" = 0,
                 content_hashes: "list[str] | str" = "",
                 extensions: "list[str] | str" = "",
                 is_updates: "list[bool] | bool" = False,
                 caused_by_attack: bool = False) -> None:
        self.times = times
        self.operations = operations
        self.node_ids = node_ids
        self.volume_ids = volume_ids
        self.volume_types = volume_types
        self.node_kinds = node_kinds
        self.size_bytes = size_bytes
        self.content_hashes = content_hashes
        self.extensions = extensions
        self.is_updates = is_updates
        self.caused_by_attack = caused_by_attack

    def __len__(self) -> int:
        return len(self.times)

    def columns(self) -> tuple[list, ...]:
        """All ten columns as equal-length lists (scalars broadcast)."""
        n = len(self.times)
        out = []
        for name in EVENT_COLUMNS:
            value = getattr(self, name)
            out.append(value if type(value) is list else [value] * n)
        return tuple(out)

    @property
    def nbytes(self) -> int:
        """Approximate payload size of the block's typed columns.

        Counts each column at its packed width (f8 time, u2 operation, i8
        ids and sizes, u1 enums and flags, raw string bytes), scalars at a
        single element — the footprint the block would have as one typed
        array per field, which is what the ``event_block_bytes`` telemetry
        tracks.
        """
        n = len(self.times)
        widths = (8, 2, 8, 8, 1, 1, 8, 0, 0, 1)
        total = 0
        for name, width in zip(EVENT_COLUMNS, widths):
            value = getattr(self, name)
            if width == 0:  # string columns: raw bytes
                if type(value) is list:
                    total += sum(len(s) for s in value)
                else:
                    total += len(value)
            else:
                total += width * (n if type(value) is list else 1)
        return total

    def rows(self) -> "list[tuple]":
        """Dispatch rows: one tuple per event, transposed at C speed.

        Each row is ``(time, operation, node_id, volume_id, volume_type,
        node_kind, size_bytes, content_hash, extension, is_update,
        caused_by_attack)`` — the argument order of
        :meth:`repro.backend.api_server.ApiServerProcess.handle_event`.
        One ``zip`` over the broadcast columns replaces a per-event object
        construction; the replay loop indexes straight into the result.
        """
        n = len(self.times)
        cols = []
        for name in EVENT_COLUMNS:
            value = getattr(self, name)
            cols.append(value if type(value) is list else [value] * n)
        cols.append([self.caused_by_attack] * n)
        return list(zip(*cols))

    @classmethod
    def from_events(cls, events: "list[ClientEvent]",
                    caused_by_attack: bool = False) -> "EventBlock":
        """Transpose a scalar event list into columnar storage."""
        if not events:
            return cls(times=[], operations=[],
                       caused_by_attack=caused_by_attack)
        return cls(times=[e.time for e in events],
                   operations=[e.operation for e in events],
                   node_ids=[e.node_id for e in events],
                   volume_ids=[e.volume_id for e in events],
                   volume_types=[e.volume_type for e in events],
                   node_kinds=[e.node_kind for e in events],
                   size_bytes=[e.size_bytes for e in events],
                   content_hashes=[e.content_hash for e in events],
                   extensions=[e.extension for e in events],
                   is_updates=[e.is_update for e in events],
                   caused_by_attack=caused_by_attack)

    def to_events(self, user_id: int, session_id: int) -> "list[ClientEvent]":
        """Hydrate per-event :class:`ClientEvent` objects from the columns."""
        attack = self.caused_by_attack
        return [ClientEvent(t, user_id, session_id, op, node_id, volume_id,
                            volume_type, node_kind, size, content_hash,
                            extension, is_update, attack)
                for (t, op, node_id, volume_id, volume_type, node_kind,
                     size, content_hash, extension, is_update)
                in zip(*self.columns())]


class SessionScript:
    """All the events of one client session, in chronological order.

    A session starts with an OPEN_SESSION event and ends with CLOSE_SESSION;
    in between come the (possibly zero) operations the client performed.
    Generated scripts carry their events columnar in :attr:`block`;
    :attr:`events` hydrates (and caches) scalar :class:`ClientEvent` objects
    on first access.  Hand-built scripts may instead pass or append to
    ``events`` directly, exactly as before the columnar rework.
    """

    __slots__ = ("user_id", "session_id", "start", "end", "_events",
                 "caused_by_attack", "auth_failed", "plan_member",
                 "member_planned_ops", "block")

    def __init__(self, user_id: int, session_id: int, start: float,
                 end: float, events: "list[ClientEvent] | None" = None,
                 caused_by_attack: bool = False, auth_failed: bool = False,
                 plan_member: int = -1, member_planned_ops: float = -1.0,
                 block: "EventBlock | None" = None) -> None:
        self.user_id = user_id
        self.session_id = session_id
        self.start = start
        self.end = end
        self.caused_by_attack = caused_by_attack
        self.auth_failed = auth_failed
        #: Plan-member identity and weight, stamped by the plan-driven
        #: generator: ``plan_member`` is the index of the workload-plan
        #: member (a legitimate user, or one slice of a DDoS episode) this
        #: script was materialized from, and ``member_planned_ops`` the
        #: member's planned operation total (the same value on every script
        #: of the member).  The sharded replay keys its deterministic
        #: longest-processing-time shard assignment on these, so replaying
        #: pre-materialized scripts and materializing them inside the shard
        #: workers produce the same shard layout.  ``-1`` means "unknown"
        #: (hand-built scripts); the assignment then falls back to per-user
        #: event counting.
        self.plan_member = plan_member
        self.member_planned_ops = member_planned_ops
        self.block = block
        if events is None and block is None:
            events = []
        self._events = events

    @property
    def events(self) -> "list[ClientEvent]":
        if self._events is None:
            self._events = self.block.to_events(self.user_id, self.session_id)
        return self._events

    @events.setter
    def events(self, value: "list[ClientEvent]") -> None:
        self._events = value
        self.block = None

    @property
    def length(self) -> float:
        """Session length in seconds."""
        return self.end - self.start

    @property
    def n_events(self) -> int:
        """Event count, without hydrating scalar events from the block."""
        if self._events is not None:
            return len(self._events)
        return len(self.block.times)

    @property
    def storage_operation_count(self) -> int:
        """Number of data-management operations performed by the session."""
        if self._events is None:
            operations = self.block.operations
            if type(operations) is not list:
                operations = [operations] * len(self.block.times)
            return sum(1 for op in operations if op.is_data_management)
        return sum(1 for e in self._events if e.operation.is_data_management)

    @property
    def is_active(self) -> bool:
        """True when the session performed at least one data-management op."""
        return self.storage_operation_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SessionScript(user_id={self.user_id}, "
                f"session_id={self.session_id}, start={self.start}, "
                f"end={self.end}, n_events={self.n_events}, "
                f"caused_by_attack={self.caused_by_attack})")

    def __iter__(self) -> Iterator[ClientEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return self.n_events
