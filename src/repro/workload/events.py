"""Client events: the interface between the workload and the back-end.

The generator produces a time-ordered stream of :class:`ClientEvent` objects
describing what desktop clients do (open/close sessions, upload, download,
make, unlink, ...).  The back-end simulator consumes this stream and turns it
into trace records enriched with server placement, RPC decomposition and
service times; alternatively the generator itself can map the events onto
records for analyses that do not need back-end detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.trace.records import ApiOperation, NodeKind, VolumeType

__all__ = ["ClientEvent", "SessionScript"]


@dataclass(slots=True)
class ClientEvent:
    """A single client action at a point in time.

    ``node_id``/``volume_id`` are client-chosen identifiers that remain
    stable across the life of a file or volume, which is what the per-file
    analyses (Fig. 3) need.  ``size_bytes``, ``content_hash``, ``extension``
    and ``is_update`` are only meaningful for transfer operations.
    """

    time: float
    user_id: int
    session_id: int
    operation: ApiOperation
    node_id: int = 0
    volume_id: int = 0
    volume_type: VolumeType = VolumeType.ROOT
    node_kind: NodeKind = NodeKind.FILE
    size_bytes: int = 0
    content_hash: str = ""
    extension: str = ""
    is_update: bool = False
    caused_by_attack: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    @property
    def is_transfer(self) -> bool:
        """True for uploads and downloads."""
        return self.operation.is_transfer

    @property
    def timestamp(self) -> float:
        """Alias of :attr:`time`.

        Makes events request-shaped (same attribute set as
        :class:`repro.backend.protocol.operations.ApiRequest`), so the replay
        loop can hand them to the API servers without a per-event copy.
        """
        return self.time


@dataclass
class SessionScript:
    """All the events of one client session, in chronological order.

    A session starts with an OPEN_SESSION event and ends with CLOSE_SESSION;
    in between come the (possibly zero) operations the client performed.
    """

    user_id: int
    session_id: int
    start: float
    end: float
    events: list[ClientEvent] = field(default_factory=list)
    caused_by_attack: bool = False
    auth_failed: bool = False
    #: Plan-member identity and weight, stamped by the plan-driven
    #: generator: ``plan_member`` is the index of the workload-plan member
    #: (a legitimate user, or one slice of a DDoS episode) this script was
    #: materialized from, and ``member_planned_ops`` the member's planned
    #: operation total (the same value on every script of the member).  The
    #: sharded replay keys its deterministic longest-processing-time shard
    #: assignment on these, so replaying pre-materialized scripts and
    #: materializing them inside the shard workers produce the same shard
    #: layout.  ``-1`` means "unknown" (hand-built scripts); the assignment
    #: then falls back to per-user event counting.
    plan_member: int = -1
    member_planned_ops: float = -1.0

    @property
    def length(self) -> float:
        """Session length in seconds."""
        return self.end - self.start

    @property
    def storage_operation_count(self) -> int:
        """Number of data-management operations performed by the session."""
        return sum(1 for e in self.events if e.operation.is_data_management)

    @property
    def is_active(self) -> bool:
        """True when the session performed at least one data-management op."""
        return self.storage_operation_count > 0

    def __iter__(self) -> Iterator[ClientEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
