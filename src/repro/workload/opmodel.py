"""Markov operation model and burst (inter-operation gap) model.

Fig. 8 of the paper shows the user-centric transition graph between API
operations: after authenticating, clients typically list volumes and shares;
transfer operations strongly repeat (uploading or downloading a file makes
another transfer the most likely next operation, because users sync whole
directories and edit files repeatedly); ``Make`` and ``Upload`` are
interleaved because creating the metadata entry precedes the content upload.

Fig. 9 shows that the gaps between consecutive operations of the same user
follow a power law with exponent between 1 and 2 — users alternate short
bursts of many operations with long idle periods (non-Poisson behaviour).

:class:`OperationChain` implements the transition structure;
:class:`BurstGapSampler` the Pareto gaps.

Since PR 5 the chain is *compiled* per ``(user class, volume-ops flag)``
into :class:`CompiledChain` inverse-CDF tables (cumulative weight rows with
the time-varying ``Download`` entry kept last), so a whole session's
operation sequence can be drawn from one pre-drawn uniform block — either
step by step in O(row) scalar work, or via :meth:`CompiledChain.walk`,
which resolves every ``(state, step)`` pair with a handful of vectorised
array operations and then walks the chain with O(1) lookups per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.records import ApiOperation
from repro.util.rngpool import RngPool
from repro.workload.population import User, UserClass

__all__ = [
    "OperationChain",
    "BurstGapSampler",
    "CompiledChain",
    "CHAIN_OPS",
    "CHAIN_OP_INDEX",
    "compiled_chain",
    "TRANSITION_TABLE",
    "INITIAL_OPERATIONS",
]


#: Operations a session starts with, right after authentication (Fig. 8 shows
#: Authenticate -> ListVolumes -> ListShares as the regular initialisation
#: flow, sometimes followed by QuerySetCaps / GetDelta / RescanFromScratch).
INITIAL_OPERATIONS: tuple[tuple[ApiOperation, float], ...] = (
    (ApiOperation.LIST_VOLUMES, 0.55),
    (ApiOperation.LIST_SHARES, 0.20),
    (ApiOperation.QUERY_SET_CAPS, 0.10),
    (ApiOperation.GET_DELTA, 0.10),
    (ApiOperation.RESCAN_FROM_SCRATCH, 0.05),
)


#: State-transition table of the operation Markov chain.  The weights encode
#: the qualitative structure of Fig. 8: transfers repeat (directory-level
#: sync, repeated file edits), Make precedes Upload, deletions come in long
#: sequences, and maintenance operations funnel into data management for
#: active sessions.
TRANSITION_TABLE: dict[ApiOperation, tuple[tuple[ApiOperation, float], ...]] = {
    ApiOperation.LIST_VOLUMES: (
        (ApiOperation.LIST_SHARES, 0.45),
        (ApiOperation.GET_DELTA, 0.25),
        (ApiOperation.DOWNLOAD, 0.12),
        (ApiOperation.MAKE, 0.10),
        (ApiOperation.QUERY_SET_CAPS, 0.08),
    ),
    ApiOperation.LIST_SHARES: (
        (ApiOperation.GET_DELTA, 0.35),
        (ApiOperation.DOWNLOAD, 0.25),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UPLOAD, 0.10),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.QUERY_SET_CAPS: (
        (ApiOperation.LIST_VOLUMES, 0.50),
        (ApiOperation.GET_DELTA, 0.30),
        (ApiOperation.DOWNLOAD, 0.20),
    ),
    ApiOperation.RESCAN_FROM_SCRATCH: (
        (ApiOperation.GET_DELTA, 0.40),
        (ApiOperation.DOWNLOAD, 0.40),
        (ApiOperation.LIST_VOLUMES, 0.20),
    ),
    ApiOperation.GET_DELTA: (
        (ApiOperation.DOWNLOAD, 0.45),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UPLOAD, 0.15),
        (ApiOperation.UNLINK, 0.10),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.MAKE: (
        (ApiOperation.UPLOAD, 0.62),
        (ApiOperation.MAKE, 0.23),
        (ApiOperation.DOWNLOAD, 0.08),
        (ApiOperation.UNLINK, 0.04),
        (ApiOperation.MOVE, 0.03),
    ),
    ApiOperation.UPLOAD: (
        (ApiOperation.UPLOAD, 0.42),
        (ApiOperation.MAKE, 0.28),
        (ApiOperation.DOWNLOAD, 0.16),
        (ApiOperation.UNLINK, 0.08),
        (ApiOperation.GET_DELTA, 0.04),
        (ApiOperation.MOVE, 0.02),
    ),
    ApiOperation.DOWNLOAD: (
        (ApiOperation.DOWNLOAD, 0.50),
        (ApiOperation.UPLOAD, 0.18),
        (ApiOperation.MAKE, 0.14),
        (ApiOperation.GET_DELTA, 0.10),
        (ApiOperation.UNLINK, 0.06),
        (ApiOperation.MOVE, 0.02),
    ),
    ApiOperation.UNLINK: (
        (ApiOperation.UNLINK, 0.55),
        (ApiOperation.UPLOAD, 0.15),
        (ApiOperation.MAKE, 0.12),
        (ApiOperation.DOWNLOAD, 0.10),
        (ApiOperation.DELETE_VOLUME, 0.03),
        (ApiOperation.GET_DELTA, 0.05),
    ),
    ApiOperation.MOVE: (
        (ApiOperation.MOVE, 0.40),
        (ApiOperation.UPLOAD, 0.20),
        (ApiOperation.DOWNLOAD, 0.20),
        (ApiOperation.MAKE, 0.20),
    ),
    ApiOperation.CREATE_UDF: (
        (ApiOperation.MAKE, 0.60),
        (ApiOperation.UPLOAD, 0.30),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.DELETE_VOLUME: (
        (ApiOperation.LIST_VOLUMES, 0.40),
        (ApiOperation.CREATE_UDF, 0.20),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UNLINK, 0.20),
    ),
}


@dataclass(frozen=True)
class _ClassBias:
    """Per-user-class multipliers for upload/download transitions."""

    upload: float
    download: float


_CLASS_BIAS = {
    UserClass.OCCASIONAL: _ClassBias(upload=0.5, download=0.65),
    UserClass.UPLOAD_ONLY: _ClassBias(upload=1.8, download=0.02),
    UserClass.DOWNLOAD_ONLY: _ClassBias(upload=0.02, download=1.8),
    UserClass.HEAVY: _ClassBias(upload=1.2, download=1.7),
}


#: Canonical index space of the chain states (every operation appearing in
#: the transition structure).  The compiled tables, the vectorised walks and
#: the generator's per-operation dispatch all speak these small integers;
#: ``CHAIN_OPS[index]`` recovers the enum member.
CHAIN_OPS: tuple[ApiOperation, ...] = (
    ApiOperation.LIST_VOLUMES,
    ApiOperation.LIST_SHARES,
    ApiOperation.QUERY_SET_CAPS,
    ApiOperation.RESCAN_FROM_SCRATCH,
    ApiOperation.GET_DELTA,
    ApiOperation.MAKE,
    ApiOperation.UPLOAD,
    ApiOperation.DOWNLOAD,
    ApiOperation.UNLINK,
    ApiOperation.MOVE,
    ApiOperation.CREATE_UDF,
    ApiOperation.DELETE_VOLUME,
)

CHAIN_OP_INDEX: dict[ApiOperation, int] = {op: i for i, op in enumerate(CHAIN_OPS)}

_DOWNLOAD_INDEX = CHAIN_OP_INDEX[ApiOperation.DOWNLOAD]
_VOLUME_INDICES = (CHAIN_OP_INDEX[ApiOperation.CREATE_UDF],
                   CHAIN_OP_INDEX[ApiOperation.DELETE_VOLUME])

#: Floor applied to the class upload multiplier on the ``Make`` row only.
#: ``Make -> Upload`` is a *structural* coupling (the client creates the
#: metadata entry and then uploads the content, Fig. 8), not a preference:
#: even download-leaning profiles that create a file follow up with its
#: upload, so the 0.02 class dampening that is right for steady-state
#: transfer choices must not sever the pair.
_MAKE_UPLOAD_BIAS_FLOOR = 1.0

_MAKE_INDEX = CHAIN_OP_INDEX[ApiOperation.MAKE]

_INITIAL_OPS = tuple(op for op, _ in INITIAL_OPERATIONS)
_INITIAL_INDICES = tuple(CHAIN_OP_INDEX[op] for op in _INITIAL_OPS)
_INITIAL_CUMULATIVE = tuple(
    float(c) for c in np.cumsum([w for _, w in INITIAL_OPERATIONS]))
_INITIAL_TOTAL = _INITIAL_CUMULATIVE[-1]


def _initial_index(u: float) -> int:
    """Resolve one uniform into an initial-operation index (inverse CDF)."""
    x = u * _INITIAL_TOTAL
    for index, cumulative in zip(_INITIAL_INDICES, _INITIAL_CUMULATIVE):
        if x < cumulative:
            return index
    return _INITIAL_INDICES[-1]


class CompiledChain:
    """The transition structure compiled for one ``(class bias, volume flag)``.

    Every row is rearranged so the diurnally re-weighted ``Download`` entry
    comes *last*: the fixed (class-biased) weights form a static cumulative
    prefix and the download weight only stretches the total.  Resolving a
    uniform ``u`` with bias ``b`` is then ``x = u * (fixed_total + wd * b)``
    followed by *one* threshold scan — and, crucially, the scan vectorises:
    ``x >= fixed_total`` means Download, anything else is a searchsorted
    over the static prefix.  Scalar steps and block walks share these exact
    tables, so they resolve identical uniforms to identical operations.
    """

    __slots__ = ("cum_rows", "target_rows", "totals", "dl_weights",
                 "_cum3", "_targets2", "_totals_col", "_dl_col")

    def __init__(self, upload_mult: float, download_mult: float,
                 allow_volume_ops: bool):
        n_states = len(CHAIN_OPS)
        cum_rows: list[tuple[float, ...]] = []
        target_rows: list[tuple[int, ...]] = []
        totals: list[float] = []
        dl_weights: list[float] = []
        for op in CHAIN_OPS:
            fixed: list[tuple[int, float]] = []
            dl_weight = 0.0
            up_mult = upload_mult
            if op is ApiOperation.MAKE:
                up_mult = max(upload_mult, _MAKE_UPLOAD_BIAS_FLOOR)
            for target, weight in TRANSITION_TABLE[op]:
                index = CHAIN_OP_INDEX[target]
                if index == _DOWNLOAD_INDEX:
                    dl_weight = weight * download_mult
                    continue
                if index in _VOLUME_INDICES and not allow_volume_ops:
                    continue
                if target is ApiOperation.UPLOAD:
                    weight *= up_mult
                fixed.append((index, weight))
            acc = 0.0
            cum: list[float] = []
            targets: list[int] = []
            for index, weight in fixed:
                acc += weight
                cum.append(acc)
                targets.append(index)
            # The sentinel entry resolved when ``x >= fixed_total``: the
            # download target when the row has one, otherwise the last fixed
            # entry (only reachable through float round-off at ``u -> 1``).
            targets.append(_DOWNLOAD_INDEX if dl_weight > 0.0 else targets[-1])
            cum_rows.append(tuple(cum))
            target_rows.append(tuple(targets))
            totals.append(acc)
            dl_weights.append(dl_weight)
        self.cum_rows = tuple(cum_rows)
        self.target_rows = tuple(target_rows)
        self.totals = tuple(totals)
        self.dl_weights = tuple(dl_weights)
        # Padded array mirrors of the same tables for the block walk.
        width = max(len(row) for row in cum_rows)
        cum2 = np.full((n_states, width), np.inf)
        targets2 = np.zeros((n_states, width + 1), dtype=np.intp)
        for s, (cum, targets) in enumerate(zip(cum_rows, target_rows)):
            cum2[s, :len(cum)] = cum
            targets2[s, :len(targets)] = targets
            targets2[s, len(targets):] = targets[-1]
        self._cum3 = cum2[:, :, None]
        self._targets2 = targets2
        self._totals_col = np.asarray(totals)[:, None]
        self._dl_col = np.asarray(dl_weights)[:, None]

    # ------------------------------------------------------------- sampling
    def step(self, state: int, u: float, bias: float) -> int:
        """One scalar transition: the inverse CDF of row ``state`` at ``u``."""
        fixed_total = self.totals[state]
        x = u * (fixed_total + self.dl_weights[state] * bias)
        targets = self.target_rows[state]
        if x < fixed_total:
            for j, c in enumerate(self.cum_rows[state]):
                if x < c:
                    return targets[j]
        return targets[-1]

    def next_matrix(self, u: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """Resolve ``(state, step)`` for *every* state over a uniform block.

        Returns an ``(n_states, n_steps)`` matrix ``m`` with ``m[s, i]`` the
        state following ``s`` under uniform ``u[i]`` and download bias
        ``bias[i]`` — the whole chain structure drawn as arrays; an actual
        walk is then one O(1) lookup per step.
        """
        x = u[None, :] * (self._totals_col + self._dl_col * bias[None, :])
        index = (self._cum3 <= x[:, None, :]).sum(axis=1)
        return np.take_along_axis(self._targets2, index, axis=1)

    def walk(self, initial_u: float, u: np.ndarray, bias: np.ndarray,
             block_threshold: int = 96) -> list[int]:
        """Draw a whole operation sequence from pre-drawn uniforms.

        ``u``/``bias`` drive the ``len(u)`` transitions after the initial
        operation (resolved from ``initial_u``).  Long blocks resolve every
        (state, step) pair vectorised first; short ones take the scalar
        steps — both paths produce bit-identical sequences for the same
        uniforms, so the cutover is purely a constant-factor choice.
        """
        state = _initial_index(initial_u)
        ops = [state]
        n = len(u)
        if n >= block_threshold:
            matrix = self.next_matrix(u, bias)
            item = matrix.item
            for i in range(n):
                state = item(state, i)
                ops.append(state)
        else:
            u_list = u.tolist() if isinstance(u, np.ndarray) else u
            bias_list = bias.tolist() if isinstance(bias, np.ndarray) else bias
            step = self.step
            for ui, bi in zip(u_list, bias_list):
                state = step(state, ui, bi)
                ops.append(state)
        return ops


#: Compiled-chain cache: one instance per (user class, volume flag); the
#: tables are pure functions of the static weights, so they are shared by
#: every materializer in the process.
_COMPILED_CHAINS: dict[tuple[UserClass, bool], CompiledChain] = {}


def compiled_chain(user_class: UserClass, allow_volume_ops: bool) -> CompiledChain:
    """The compiled transition tables for one user class."""
    key = (user_class, allow_volume_ops)
    chain = _COMPILED_CHAINS.get(key)
    if chain is None:
        bias = _CLASS_BIAS[user_class]
        chain = _COMPILED_CHAINS[key] = CompiledChain(
            bias.upload, bias.download, allow_volume_ops)
    return chain


class OperationChain:
    """Samples sequences of API operations for a session.

    The chain is the Fig. 8 transition structure re-weighted per user class
    (upload-only users rarely download and vice versa) and per time of day
    (the download bias from the diurnal model nudges the R/W ratio).

    Scalar sampling resolves one pooled uniform against the
    :class:`CompiledChain` tables; block sampling (the vectorised
    materializer) uses :meth:`CompiledChain.walk` on the same tables.
    """

    def __init__(self, rng: np.random.Generator | RngPool):
        if isinstance(rng, RngPool):
            self._pool = rng
            self._rng = rng.generator
        else:
            self._rng = rng
            self._pool = RngPool(rng)

    def initial_operation(self) -> ApiOperation:
        """First operation of a session after authentication."""
        return CHAIN_OPS[_initial_index(self._pool.random())]

    def next_operation(self, current: ApiOperation, user: User,
                       download_bias: float = 1.0,
                       allow_volume_ops: bool = True) -> ApiOperation:
        """Sample the operation following ``current`` for ``user``."""
        state = CHAIN_OP_INDEX.get(current)
        if state is None:
            return self.initial_operation()
        chain = compiled_chain(user.user_class, allow_volume_ops)
        return CHAIN_OPS[chain.step(state, self._pool.random(), download_bias)]


class BurstGapSampler:
    """Pareto-distributed gaps between consecutive operations of a user.

    ``P(X >= x) = (x / theta) ^ -alpha`` for ``x >= theta``; the paper fits
    alpha = 1.54 for uploads and alpha = 1.44 for unlinks, with thresholds of
    tens of seconds.  Gaps are capped so that a single session cannot exceed
    the measurement window.
    """

    def __init__(self, rng: np.random.Generator | RngPool, alpha: float = 1.5,
                 theta: float = 1.0, cap: float = 4 * 3600.0):
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for finite mean gaps")
        if theta <= 0:
            raise ValueError("theta must be positive")
        if isinstance(rng, RngPool):
            self._pool = rng
            self._rng = rng.generator
        else:
            self._rng = rng
            self._pool = RngPool(rng)
        self._alpha = alpha
        self._theta = theta
        self._cap = cap

    def sample(self) -> float:
        """One inter-operation gap in seconds."""
        u = self._pool.random()
        gap = self._theta * (1.0 - u) ** (-1.0 / self._alpha)
        return gap if gap < self._cap else self._cap

    def sample_many(self, n: int) -> np.ndarray:
        """Vector of ``n`` gaps."""
        u = self._rng.random(n)
        gaps = self._theta * (1.0 - u) ** (-1.0 / self._alpha)
        return np.minimum(gaps, self._cap)

    @staticmethod
    def mean_truncated_gap(alpha: float, theta: float, cap: float) -> float:
        """Closed-form ``E[min(Pareto(alpha, theta), cap)]``.

        The planning pass uses this to convert a session's drawn operation
        count into the *expected realised* count ``min(n_ops, 1 + length /
        E[gap])``: sessions stop materializing once the pre-drawn timeline
        passes their end, so long heavy-tail draws that a short session
        truncates must not inflate the attack-rate baseline or the LPT
        shard weights.  The formula holds for both the scalar and the
        block-drawn (``sample_many``) gap streams — they share the same
        truncated-Pareto distribution.
        """
        return theta * (1.0 + (1.0 - (theta / cap) ** (alpha - 1.0))
                        / (alpha - 1.0))
