"""Markov operation model and burst (inter-operation gap) model.

Fig. 8 of the paper shows the user-centric transition graph between API
operations: after authenticating, clients typically list volumes and shares;
transfer operations strongly repeat (uploading or downloading a file makes
another transfer the most likely next operation, because users sync whole
directories and edit files repeatedly); ``Make`` and ``Upload`` are
interleaved because creating the metadata entry precedes the content upload.

Fig. 9 shows that the gaps between consecutive operations of the same user
follow a power law with exponent between 1 and 2 — users alternate short
bursts of many operations with long idle periods (non-Poisson behaviour).

:class:`OperationChain` implements the transition structure;
:class:`BurstGapSampler` the Pareto gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.records import ApiOperation
from repro.util.rngpool import RngPool
from repro.workload.population import User, UserClass

__all__ = ["OperationChain", "BurstGapSampler", "TRANSITION_TABLE", "INITIAL_OPERATIONS"]


#: Operations a session starts with, right after authentication (Fig. 8 shows
#: Authenticate -> ListVolumes -> ListShares as the regular initialisation
#: flow, sometimes followed by QuerySetCaps / GetDelta / RescanFromScratch).
INITIAL_OPERATIONS: tuple[tuple[ApiOperation, float], ...] = (
    (ApiOperation.LIST_VOLUMES, 0.55),
    (ApiOperation.LIST_SHARES, 0.20),
    (ApiOperation.QUERY_SET_CAPS, 0.10),
    (ApiOperation.GET_DELTA, 0.10),
    (ApiOperation.RESCAN_FROM_SCRATCH, 0.05),
)


#: State-transition table of the operation Markov chain.  The weights encode
#: the qualitative structure of Fig. 8: transfers repeat (directory-level
#: sync, repeated file edits), Make precedes Upload, deletions come in long
#: sequences, and maintenance operations funnel into data management for
#: active sessions.
TRANSITION_TABLE: dict[ApiOperation, tuple[tuple[ApiOperation, float], ...]] = {
    ApiOperation.LIST_VOLUMES: (
        (ApiOperation.LIST_SHARES, 0.45),
        (ApiOperation.GET_DELTA, 0.25),
        (ApiOperation.DOWNLOAD, 0.12),
        (ApiOperation.MAKE, 0.10),
        (ApiOperation.QUERY_SET_CAPS, 0.08),
    ),
    ApiOperation.LIST_SHARES: (
        (ApiOperation.GET_DELTA, 0.35),
        (ApiOperation.DOWNLOAD, 0.25),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UPLOAD, 0.10),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.QUERY_SET_CAPS: (
        (ApiOperation.LIST_VOLUMES, 0.50),
        (ApiOperation.GET_DELTA, 0.30),
        (ApiOperation.DOWNLOAD, 0.20),
    ),
    ApiOperation.RESCAN_FROM_SCRATCH: (
        (ApiOperation.GET_DELTA, 0.40),
        (ApiOperation.DOWNLOAD, 0.40),
        (ApiOperation.LIST_VOLUMES, 0.20),
    ),
    ApiOperation.GET_DELTA: (
        (ApiOperation.DOWNLOAD, 0.45),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UPLOAD, 0.15),
        (ApiOperation.UNLINK, 0.10),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.MAKE: (
        (ApiOperation.UPLOAD, 0.62),
        (ApiOperation.MAKE, 0.23),
        (ApiOperation.DOWNLOAD, 0.08),
        (ApiOperation.UNLINK, 0.04),
        (ApiOperation.MOVE, 0.03),
    ),
    ApiOperation.UPLOAD: (
        (ApiOperation.UPLOAD, 0.42),
        (ApiOperation.MAKE, 0.28),
        (ApiOperation.DOWNLOAD, 0.16),
        (ApiOperation.UNLINK, 0.08),
        (ApiOperation.GET_DELTA, 0.04),
        (ApiOperation.MOVE, 0.02),
    ),
    ApiOperation.DOWNLOAD: (
        (ApiOperation.DOWNLOAD, 0.50),
        (ApiOperation.UPLOAD, 0.18),
        (ApiOperation.MAKE, 0.14),
        (ApiOperation.GET_DELTA, 0.10),
        (ApiOperation.UNLINK, 0.06),
        (ApiOperation.MOVE, 0.02),
    ),
    ApiOperation.UNLINK: (
        (ApiOperation.UNLINK, 0.55),
        (ApiOperation.UPLOAD, 0.15),
        (ApiOperation.MAKE, 0.12),
        (ApiOperation.DOWNLOAD, 0.10),
        (ApiOperation.DELETE_VOLUME, 0.03),
        (ApiOperation.GET_DELTA, 0.05),
    ),
    ApiOperation.MOVE: (
        (ApiOperation.MOVE, 0.40),
        (ApiOperation.UPLOAD, 0.20),
        (ApiOperation.DOWNLOAD, 0.20),
        (ApiOperation.MAKE, 0.20),
    ),
    ApiOperation.CREATE_UDF: (
        (ApiOperation.MAKE, 0.60),
        (ApiOperation.UPLOAD, 0.30),
        (ApiOperation.LIST_VOLUMES, 0.10),
    ),
    ApiOperation.DELETE_VOLUME: (
        (ApiOperation.LIST_VOLUMES, 0.40),
        (ApiOperation.CREATE_UDF, 0.20),
        (ApiOperation.MAKE, 0.20),
        (ApiOperation.UNLINK, 0.20),
    ),
}


@dataclass(frozen=True)
class _ClassBias:
    """Per-user-class multipliers for upload/download transitions."""

    upload: float
    download: float


_CLASS_BIAS = {
    UserClass.OCCASIONAL: _ClassBias(upload=0.5, download=0.65),
    UserClass.UPLOAD_ONLY: _ClassBias(upload=1.8, download=0.02),
    UserClass.DOWNLOAD_ONLY: _ClassBias(upload=0.02, download=1.8),
    UserClass.HEAVY: _ClassBias(upload=1.2, download=1.7),
}


#: Per-entry tags used by the precompiled transition rows.
_KIND_PLAIN, _KIND_UPLOAD, _KIND_DOWNLOAD, _KIND_VOLUME = 0, 1, 2, 3


def _compile_row(entries: tuple[tuple[ApiOperation, float], ...]):
    row = []
    for op, weight in entries:
        if op is ApiOperation.UPLOAD:
            kind = _KIND_UPLOAD
        elif op is ApiOperation.DOWNLOAD:
            kind = _KIND_DOWNLOAD
        elif op in (ApiOperation.CREATE_UDF, ApiOperation.DELETE_VOLUME):
            kind = _KIND_VOLUME
        else:
            kind = _KIND_PLAIN
        row.append((op, weight, kind))
    return tuple(row)


#: TRANSITION_TABLE precompiled into (op, weight, kind) rows so that the
#: per-step sampling only applies class/diurnal multipliers and a cumulative
#: scan — no list rebuilding, no ``np.random.choice`` probability validation.
_COMPILED_TABLE = {current: _compile_row(entries)
                   for current, entries in TRANSITION_TABLE.items()}

_INITIAL_OPS = tuple(op for op, _ in INITIAL_OPERATIONS)
_INITIAL_CUMULATIVE = tuple(
    float(c) for c in np.cumsum([w for _, w in INITIAL_OPERATIONS]))


class OperationChain:
    """Samples sequences of API operations for a session.

    The chain is the Fig. 8 transition structure re-weighted per user class
    (upload-only users rarely download and vice versa) and per time of day
    (the download bias from the diurnal model nudges the R/W ratio).

    Sampling is a cumulative-weight scan over the precompiled transition row
    driven by one pooled uniform — the tables never change at run time, only
    the upload/download multipliers do.
    """

    def __init__(self, rng: np.random.Generator | RngPool):
        if isinstance(rng, RngPool):
            self._pool = rng
            self._rng = rng.generator
        else:
            self._rng = rng
            self._pool = RngPool(rng)

    def initial_operation(self) -> ApiOperation:
        """First operation of a session after authentication."""
        u = self._pool.random() * _INITIAL_CUMULATIVE[-1]
        for op, cumulative in zip(_INITIAL_OPS, _INITIAL_CUMULATIVE):
            if u < cumulative:
                return op
        return _INITIAL_OPS[-1]

    def next_operation(self, current: ApiOperation, user: User,
                       download_bias: float = 1.0,
                       allow_volume_ops: bool = True) -> ApiOperation:
        """Sample the operation following ``current`` for ``user``."""
        row = _COMPILED_TABLE.get(current)
        if row is None:
            return self.initial_operation()
        bias = _CLASS_BIAS[user.user_class]
        upload_mult = bias.upload
        download_mult = bias.download * download_bias
        total = 0.0
        for op, weight, kind in row:
            if kind == _KIND_UPLOAD:
                weight *= upload_mult
            elif kind == _KIND_DOWNLOAD:
                weight *= download_mult
            elif kind == _KIND_VOLUME and not allow_volume_ops:
                continue
            total += weight
        if total <= 0:
            return self.initial_operation()
        u = self._pool.random() * total
        acc = 0.0
        chosen = None
        for op, weight, kind in row:
            if kind == _KIND_UPLOAD:
                weight *= upload_mult
            elif kind == _KIND_DOWNLOAD:
                weight *= download_mult
            elif kind == _KIND_VOLUME and not allow_volume_ops:
                continue
            acc += weight
            chosen = op
            if u < acc:
                return op
        return chosen if chosen is not None else self.initial_operation()


class BurstGapSampler:
    """Pareto-distributed gaps between consecutive operations of a user.

    ``P(X >= x) = (x / theta) ^ -alpha`` for ``x >= theta``; the paper fits
    alpha = 1.54 for uploads and alpha = 1.44 for unlinks, with thresholds of
    tens of seconds.  Gaps are capped so that a single session cannot exceed
    the measurement window.
    """

    def __init__(self, rng: np.random.Generator | RngPool, alpha: float = 1.5,
                 theta: float = 1.0, cap: float = 4 * 3600.0):
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for finite mean gaps")
        if theta <= 0:
            raise ValueError("theta must be positive")
        if isinstance(rng, RngPool):
            self._pool = rng
            self._rng = rng.generator
        else:
            self._rng = rng
            self._pool = RngPool(rng)
        self._alpha = alpha
        self._theta = theta
        self._cap = cap

    def sample(self) -> float:
        """One inter-operation gap in seconds."""
        u = self._pool.random()
        gap = self._theta * (1.0 - u) ** (-1.0 / self._alpha)
        return gap if gap < self._cap else self._cap

    def sample_many(self, n: int) -> np.ndarray:
        """Vector of ``n`` gaps."""
        u = self._rng.random(n)
        gaps = self._theta * (1.0 - u) ** (-1.0 / self._alpha)
        return np.minimum(gaps, self._cap)
