"""The user population model.

Section 6 of the paper characterises U1 users:

* using the Drago et al. classification, 85.82 % of users are *occasional*
  (they transfer less than 10 KB in the month), 7.22 % are upload-only,
  2.34 % download-only and 4.62 % heavy;
* per-user traffic is extremely skewed: 1 % of users generate 65 % of the
  traffic and the Gini coefficient of the per-user traffic distribution is
  ~0.9 (Fig. 7c);
* 58 % of users have created at least one user-defined volume while only
  1.8 % have a shared volume (Fig. 11);
* only 14 % of users downloaded anything in the month and 25 % uploaded.

:func:`build_population` materialises a population consistent with those
observations; the activity *weight* of each user follows a lognormal whose
sigma is chosen to match the Gini target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.workload.config import WorkloadConfig

__all__ = ["UserClass", "User", "build_population"]


class UserClass(str, enum.Enum):
    """User activity classes (Drago et al. / Section 6.1)."""

    OCCASIONAL = "occasional"
    UPLOAD_ONLY = "upload_only"
    DOWNLOAD_ONLY = "download_only"
    HEAVY = "heavy"


@dataclass
class User:
    """One synthetic U1 user."""

    user_id: int
    user_class: UserClass
    #: Relative activity weight; scales the number of sessions that are
    #: active and the number of operations per active session.
    activity_weight: float
    #: Number of user-defined volumes the user creates during the trace.
    udf_volumes: int
    #: Number of shared volumes the user participates in.
    shared_volumes: int
    #: Hour-of-day phase offset so that not every user peaks at 2 pm sharp.
    phase_offset_hours: float = 0.0
    #: Preferred extension categories; heavier developers churn code files,
    #: media hoarders upload songs.  Kept as an index bias into the file
    #: model's profile table.
    developer_bias: float = 0.0
    #: Populated by the generator: volume ids owned by the user.
    volume_ids: list[int] = field(default_factory=list)

    @property
    def may_upload(self) -> bool:
        """Whether this user's class allows uploads."""
        return self.user_class in (UserClass.UPLOAD_ONLY, UserClass.HEAVY,
                                   UserClass.OCCASIONAL)

    @property
    def may_download(self) -> bool:
        """Whether this user's class allows downloads."""
        return self.user_class in (UserClass.DOWNLOAD_ONLY, UserClass.HEAVY,
                                   UserClass.OCCASIONAL)

    @property
    def is_occasional(self) -> bool:
        """True for occasional users (< 10 KB transferred in the month)."""
        return self.user_class is UserClass.OCCASIONAL


def _assign_classes(config: WorkloadConfig, rng: np.random.Generator) -> list[UserClass]:
    classes = [UserClass.OCCASIONAL, UserClass.UPLOAD_ONLY,
               UserClass.DOWNLOAD_ONLY, UserClass.HEAVY]
    probabilities = [config.occasional_fraction, config.upload_only_fraction,
                     config.download_only_fraction, config.heavy_fraction]
    indices = rng.choice(len(classes), size=config.n_users, p=probabilities)
    return [classes[i] for i in indices]


def build_population(config: WorkloadConfig,
                     rng: np.random.Generator | None = None) -> list[User]:
    """Build the synthetic user population described by ``config``."""
    config.validate()
    if rng is None:
        rng = np.random.default_rng(config.seed)

    classes = _assign_classes(config, rng)
    # Lognormal activity weights: sigma ~ 2.33 yields Gini ~ 0.9 for the
    # resulting traffic distribution.  Occasional users are clamped to a tiny
    # weight so that they stay below the 10 KB threshold.
    raw_weights = rng.lognormal(mean=0.0, sigma=config.activity_sigma,
                                size=config.n_users)

    users: list[User] = []
    for user_id in range(1, config.n_users + 1):
        user_class = classes[user_id - 1]
        weight = float(raw_weights[user_id - 1])
        if user_class is UserClass.OCCASIONAL:
            weight = min(weight, 0.05)
        elif user_class is UserClass.HEAVY:
            weight = max(weight, 1.0)

        udf = 0
        if rng.random() < config.udf_user_fraction:
            udf = 1 + int(rng.integers(0, config.max_udf_volumes))
        shared = 0
        if rng.random() < config.shared_user_fraction:
            shared = 1 + int(rng.integers(0, config.max_shared_volumes))

        users.append(User(
            user_id=user_id,
            user_class=user_class,
            activity_weight=weight,
            udf_volumes=udf,
            shared_volumes=shared,
            phase_offset_hours=float(rng.normal(0.0, 2.0)),
            developer_bias=float(rng.random()),
        ))
    return users
