"""Synthetic U1 workload generator.

The released U1 trace is 758 GB and cannot be shipped with this repository;
instead, this package generates a statistically faithful synthetic workload
using the empirical models the paper reports:

* a user population split into occasional / upload-only / download-only /
  heavy classes with a heavily skewed per-user activity weight
  (:mod:`repro.workload.population`);
* per-extension file-size models, a file-type taxonomy, cross-user content
  duplication and file updates (:mod:`repro.workload.filemodel`);
* diurnal and weekly activity modulation (:mod:`repro.workload.diurnal`);
* session arrivals, the session-length mixture and the active/cold session
  split (:mod:`repro.workload.sessionmodel`);
* a Markov chain over API operations reproducing the user-centric request
  graph of Fig. 8 together with power-law inter-operation gaps
  (:mod:`repro.workload.opmodel`);
* DDoS episodes (:mod:`repro.workload.attacks`).

:class:`~repro.workload.generator.SyntheticTraceGenerator` stitches these
models together.  Generation is a two-pass pipeline: :meth:`plan` runs the
global planning pass (a :class:`~repro.workload.plan.WorkloadPlan`) and
:func:`~repro.workload.generator.materialize_members` turns plan members
into session scripts from per-user RNG streams — in-process
(:meth:`client_events`, :meth:`generate`) or inside the sharded replay
workers (the fused pipeline, :meth:`repro.backend.cluster.U1Cluster.replay_plan`).
"""

from repro.workload.config import WorkloadConfig
from repro.workload.events import ClientEvent, SessionScript
from repro.workload.generator import SyntheticTraceGenerator, materialize_members
from repro.workload.plan import AttackPlan, SessionSpec, UserPlan, WorkloadPlan
from repro.workload.population import User, UserClass, build_population
from repro.workload.filemodel import (
    FileModel,
    ExtensionProfile,
    FILE_CATEGORIES,
    PopularContentPool,
)
from repro.workload.attacks import AttackEpisode

__all__ = [
    "WorkloadConfig",
    "ClientEvent",
    "SessionScript",
    "SyntheticTraceGenerator",
    "materialize_members",
    "AttackPlan",
    "SessionSpec",
    "UserPlan",
    "WorkloadPlan",
    "User",
    "UserClass",
    "build_population",
    "FileModel",
    "ExtensionProfile",
    "FILE_CATEGORIES",
    "PopularContentPool",
    "AttackEpisode",
]
