"""Session arrival and session length models.

Section 7.3 of the paper characterises U1 sessions:

* session arrivals follow the users' working habits (diurnal + weekly
  patterns, Fig. 15);
* 32 % of sessions are shorter than one second (NAT/firewall boxes closing
  idle TCP connections) and 97 % are shorter than 8 hours (Fig. 16);
* only 5.57 % of sessions perform any data-management operation ("active"
  sessions); active sessions are much longer than cold ones, and 20 % of
  the active sessions account for 96.7 % of all data-management operations;
* 2.76 % of authentication requests fail.

:class:`SessionModel` samples per-user session start times and lengths, and
decides which sessions are active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import DAY
from repro.workload.config import WorkloadConfig
from repro.workload.diurnal import DiurnalProfile
from repro.workload.population import User, UserClass

__all__ = ["SessionPlan", "SessionModel"]


@dataclass(frozen=True)
class SessionPlan:
    """A planned session: when it starts, how long it lasts, whether it is
    active (performs storage operations) and whether authentication fails."""

    user_id: int
    start: float
    length: float
    active: bool
    auth_fails: bool

    @property
    def end(self) -> float:
        """End timestamp of the session."""
        return self.start + self.length


class SessionModel:
    """Samples session plans for every user in the population."""

    #: Multiplier applied to the probability that a session is active,
    #: depending on the user class: heavy users are active almost every
    #: session, occasional users almost never.
    _ACTIVE_MULTIPLIER = {
        UserClass.OCCASIONAL: 0.35,
        UserClass.UPLOAD_ONLY: 4.0,
        UserClass.DOWNLOAD_ONLY: 4.0,
        UserClass.HEAVY: 9.0,
    }

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator,
                 diurnal: DiurnalProfile | None = None):
        self._config = config
        self._rng = rng
        self._diurnal = diurnal or DiurnalProfile(
            peak_to_trough=config.diurnal_peak_to_trough,
            weekend_factor=config.weekend_factor,
        )
        # Thinning bound of the inhomogeneous Poisson process; constant per
        # configuration, so computed once instead of per user.
        self._max_multiplier = self._diurnal.max_intensity(config.start_time)

    # ----------------------------------------------------------------- starts
    def _sample_start_times(self, user: User) -> np.ndarray:
        """Session start times over the whole window via thinned Poisson.

        Fully vectorised: candidate times, diurnal intensities and the
        acceptance test are drawn as arrays rather than per candidate.
        """
        config = self._config
        duration = config.duration_days * DAY
        base_rate = config.sessions_per_user_day / DAY  # sessions per second
        rate_bound = base_rate * self._max_multiplier
        expected = rate_bound * duration
        n_candidates = int(self._rng.poisson(expected))
        if n_candidates == 0:
            return np.empty(0)
        candidates = config.start_time + self._rng.uniform(0.0, duration, size=n_candidates)
        candidates.sort()
        shifted = candidates + user.phase_offset_hours * 3600.0
        accept_prob = self._diurnal.intensity_array(shifted) / self._max_multiplier
        accepted = self._rng.random(n_candidates) < accept_prob
        return candidates[accepted]

    # ----------------------------------------------------------------- active
    def _active_probability(self, user: User) -> float:
        """Probability that a non-sub-second session is active for ``user``."""
        base = self._config.active_session_fraction
        multiplier = self._ACTIVE_MULTIPLIER[user.user_class]
        weight_boost = min(3.0, 1.0 + user.activity_weight / 10.0)
        return min(0.95, base * multiplier * weight_boost)

    # -------------------------------------------------------------------- API
    def plan_user_sessions(self, user: User) -> list[SessionPlan]:
        """All the session plans of one user over the measurement window.

        Lengths, activity flags and authentication outcomes are drawn as
        vectors for the whole user at once; the per-session distributions are
        identical to the historical scalar sampling.
        """
        config = self._config
        starts = self._sample_start_times(user)
        starts = starts[starts < config.end_time]
        n = len(starts)
        if n == 0:
            return []
        rng = self._rng
        # Short/body length mixture, drawn as arrays: 32 % of sessions are
        # sub-second NAT/firewall closures (Fig. 16), the body is a capped
        # lognormal.
        short = rng.random(n) < config.short_session_fraction
        mu = np.log(config.session_length_median)
        lengths = np.where(
            short,
            rng.uniform(0.05, 1.0, size=n),
            np.minimum(rng.lognormal(mean=mu, sigma=config.session_length_sigma, size=n),
                       config.session_length_cap))
        lengths = np.minimum(lengths, config.end_time - starts)
        active_prob = self._active_probability(user)
        active = (lengths >= 1.0) & (rng.random(n) < active_prob)
        auth_fails = rng.random(n) < config.auth_failure_fraction
        return [
            SessionPlan(user_id=user.user_id, start=float(start),
                        length=float(length), active=bool(is_active),
                        auth_fails=bool(fails))
            for start, length, is_active, fails
            in zip(starts, lengths, active, auth_fails)
        ]
