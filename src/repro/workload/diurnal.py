"""Diurnal and weekly modulation of user activity.

The paper observes strong daily patterns: hourly upload volume is up to 10x
higher during central day hours than at night (Fig. 2a), authentication
activity is 50-60 % higher during the day (Fig. 15) and Mondays peak ~15 %
above weekends.  It also observes that the R/W ratio decays roughly linearly
from 6 am to 3 pm — users download more content when they start their
clients, and upload more during working hours.

:class:`DiurnalProfile` turns those observations into a time-varying
intensity multiplier and a time-varying download bias used by the operation
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.units import DAY, HOUR

__all__ = ["DiurnalProfile"]


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-day / day-of-week activity modulation.

    Parameters
    ----------
    peak_to_trough:
        Ratio between the maximum (early afternoon) and minimum (night)
        hourly intensity.
    weekend_factor:
        Multiplier applied on Saturdays and Sundays.
    phase_hours:
        Hour of the day (0-24) at which activity peaks.
    """

    peak_to_trough: float = 10.0
    weekend_factor: float = 0.85
    phase_hours: float = 14.0

    def __post_init__(self) -> None:
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1")
        if not 0.0 < self.weekend_factor <= 1.5:
            raise ValueError("weekend_factor must be in (0, 1.5]")

    # ------------------------------------------------------------------ time
    @staticmethod
    def hour_of_day(timestamp: float) -> float:
        """Hour of the (UTC) day, in [0, 24)."""
        return (timestamp % DAY) / HOUR

    @staticmethod
    def day_of_week(timestamp: float) -> int:
        """Day of the week with Monday = 0 (the trace epoch falls on a
        Saturday, 2014-01-11, and POSIX day 0 was a Thursday)."""
        return int(timestamp // DAY + 3) % 7

    # ------------------------------------------------------------- intensity
    def intensity(self, timestamp: float) -> float:
        """Relative activity multiplier at ``timestamp`` (mean ~1 over a week).

        The intra-day shape is a raised cosine with the configured
        peak-to-trough ratio, peaking at :attr:`phase_hours`.
        """
        hour = self.hour_of_day(timestamp)
        # Raised cosine in [trough, peak].
        peak = self.peak_to_trough
        trough = 1.0
        mid = (peak + trough) / 2.0
        amplitude = (peak - trough) / 2.0
        value = mid + amplitude * math.cos(2 * math.pi * (hour - self.phase_hours) / 24.0)
        if self.day_of_week(timestamp) >= 5:
            value *= self.weekend_factor
        # Normalise so that the weekly mean multiplier is ~1.
        return value / mid

    def intensity_array(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`intensity` over an array of timestamps."""
        ts = np.asarray(timestamps, dtype=np.float64)
        hour = (ts % DAY) / HOUR
        peak = self.peak_to_trough
        trough = 1.0
        mid = (peak + trough) / 2.0
        amplitude = (peak - trough) / 2.0
        value = mid + amplitude * np.cos(2 * np.pi * (hour - self.phase_hours) / 24.0)
        # day_of_week(ts) = (ts // DAY + 3) % 7; weekends are days 5 and 6.
        weekend = ((ts // DAY).astype(np.int64) + 3) % 7 >= 5
        value = np.where(weekend, value * self.weekend_factor, value)
        return value / mid

    def max_intensity(self, start_time: float = 0.0) -> float:
        """Maximum of :meth:`intensity` over one week from ``start_time``."""
        hours = start_time + np.arange(24 * 7) * HOUR
        return float(self.intensity_array(hours).max())

    def mean_intensity(self) -> float:
        """Average of :meth:`intensity` over one week (should be close to 1)."""
        samples = [self.intensity(t * HOUR) for t in range(7 * 24)]
        return sum(samples) / len(samples)

    # --------------------------------------------------------- download bias
    def download_bias(self, timestamp: float) -> float:
        """Multiplier (>1 favours downloads) encoding the R/W daily trend.

        The paper finds a linear decay of the R/W ratio from 6 am to 3 pm:
        downloads dominate when clients start up in the morning, uploads
        dominate during working hours.  We encode that as a bias that decays
        linearly from 1.5 at 6 am to 0.8 at 3 pm and stays flat otherwise.
        """
        hour = self.hour_of_day(timestamp)
        if 6.0 <= hour <= 15.0:
            frac = (hour - 6.0) / 9.0
            return 1.5 - 0.7 * frac
        return 1.0

    def download_bias_array(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`download_bias` over an array of timestamps.

        The vectorised materializer pre-computes every operation's bias from
        the pre-drawn timeline in one call instead of one scalar call per
        chain transition.
        """
        ts = np.asarray(timestamps, dtype=np.float64)
        hour = (ts % DAY) / HOUR
        bias = 1.5 - 0.7 * ((hour - 6.0) / 9.0)
        return np.where((hour >= 6.0) & (hour <= 15.0), bias, 1.0)
