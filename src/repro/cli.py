"""Command-line interface of the reproduction.

Four sub-commands cover the full pipeline::

    python -m repro generate  --users 400 --days 5 --out trace_dir
        Generate a synthetic client workload, replay it through the simulated
        back-end and write the resulting per-process logfiles.

    python -m repro analyze   trace_dir
        Read a trace directory and print the consolidated analysis report
        (every table/figure of the paper).

    python -m repro report    --users 400 --days 5
        Generate, replay and analyse in one go, without touching the disk.

    python -m repro summarize trace_dir
        Print only the Table 3 summary of a trace directory.

    python -m repro bench
        Time the generate + replay + analysis pipeline and write the
        measurements (and the speedup versus the seed engine) to
        ``BENCH_pipeline.json``.

    python -m repro whatif  --users 400 --days 5
        Replay the workload once, then sweep storage policies (dedup off,
        delta updates, hot/cold tiering) *offline* over the trace columns
        and print the cost comparison — one replay plus N cheap passes
        instead of N full replays.

    python -m repro faultsweep --users 400 --days 5
        Replay the workload once through a faulted cluster (degraded and
        flapping processes, a lossy link, a read-only metadata shard, a
        storage-node outage, an auth outage), then evaluate mitigation
        policies (retry budgets, hedging, drain-and-repair,
        disable-and-continue) *offline* over the faulted trace and print
        the error-rate / tail-latency / penalty comparison.

    python -m repro verify checkpoint_dir
        Offline integrity audit (fsck) of checkpoint run directories:
        manifest consistency, per-shard checksums, orphan/foreign/
        truncated files — findings classified repairable vs fatal.

The replaying commands (generate/report/whatif/faultsweep) install
SIGINT/SIGTERM handlers: the first signal checkpoints completed shards
(with ``--checkpoint-dir``), finalizes the run manifest and exits with
code 3; a second signal aborts immediately with ``128+signum``.

Exit codes (see :mod:`repro.util.lifecycle`): 0 success, 1 empty input,
2 artifact write failure, 3 interrupted (graceful, resumable),
4 corruption (verify findings or ``--validate`` violations).

The CLI is intentionally a thin veneer over the library: everything it does
can be done programmatically through :mod:`repro.workload`,
:mod:`repro.backend` and :mod:`repro.core`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.report import format_report
from repro.core.summary import format_table3
from repro.trace.anonymize import Anonymizer
from repro.trace.dataset import TraceDataset
from repro.trace.logfile import read_trace_directory, write_trace_directory
from repro.util.lifecycle import (
    EXIT_CORRUPTION,
    EXIT_EMPTY,
    EXIT_INTERRUPTED,
    EXIT_OK,
    RunInterrupted,
    graceful_shutdown,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator

__all__ = ["build_parser", "main"]

#: Commands that replay shards: they get signal handlers, the RSS
#: watchdog and the interrupted exit code.
_REPLAY_COMMANDS = frozenset({"generate", "report", "whatif", "faultsweep"})


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=400,
                        help="number of synthetic users (default: 400)")
    parser.add_argument("--days", type=float, default=5.0,
                        help="trace duration in days (default: 5)")
    parser.add_argument("--seed", type=int, default=2014,
                        help="random seed (default: 2014)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sharded replay "
                             "(default: 1; the trace is bit-identical for "
                             "any value)")
    parser.add_argument("--no-backend", action="store_true",
                        help="emit client-side records only (skip the back-end "
                             "simulation; no RPC records will be available)")
    parser.add_argument("--validate", action="store_true",
                        help="check the trace invariants (monotonic "
                             "timelines, schema, session referential "
                             "integrity, fault columns) after the replay; "
                             "violations exit with code 4")
    _add_resume_options(parser)


def _add_resume_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="spill each completed replay shard as an atomic "
                             ".npz checkpoint under this directory (keyed by "
                             "config + workload, so unrelated runs never "
                             "collide)")
    parser.add_argument("--resume", action="store_true",
                        help="load finished shards from --checkpoint-dir "
                             "instead of re-executing them; the merged trace "
                             "is bit-identical to an undisturbed run")
    parser.add_argument("--max-rss-mb", type=int, default=None,
                        help="opt-in RSS watchdog: when the driver's "
                             "resident set exceeds this many MiB, the run "
                             "checkpoints completed shards and exits with "
                             "code 3 instead of being OOM-killed")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="write the final telemetry registry snapshot "
                             "(counters, gauges, histograms, phase spans) "
                             "as JSON to this path")
    parser.add_argument("--progress", action="store_true",
                        help="print a live replay progress line to stderr "
                             "(records/s, per-shard completion, ETA, "
                             "retries/quarantines), fed by worker "
                             "heartbeats")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dissecting UbuntuOne' (IMC 2015): "
                    "synthetic workload generator, back-end simulator and "
                    "trace analyses.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic trace and write logfiles")
    _add_workload_options(generate)
    generate.add_argument("--out", type=Path, required=True,
                          help="directory to write the per-process logfiles to")
    generate.add_argument("--anonymize", action="store_true",
                          help="anonymise the trace before writing it")

    analyze = subparsers.add_parser(
        "analyze", help="analyse a trace directory and print the full report")
    analyze.add_argument("trace_dir", type=Path,
                         help="directory of production-*.csv logfiles")

    summarize = subparsers.add_parser(
        "summarize", help="print the Table 3 summary of a trace directory")
    summarize.add_argument("trace_dir", type=Path,
                           help="directory of production-*.csv logfiles")

    report = subparsers.add_parser(
        "report", help="generate, simulate and analyse in one go")
    _add_workload_options(report)

    bench = subparsers.add_parser(
        "bench", help="benchmark the generate + replay + analysis pipeline")
    bench.add_argument("--users", type=int, default=300,
                       help="number of synthetic users (default: 300)")
    bench.add_argument("--days", type=float, default=3.0,
                       help="trace duration in days (default: 3)")
    bench.add_argument("--seed", type=int, default=2014,
                       help="random seed (default: 2014)")
    bench.add_argument("--repeats", type=int, default=5,
                       help="repetitions per phase, best-of (default: 5)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sharded replay "
                            "(default: 1)")
    bench.add_argument("--out", type=Path, default=Path("BENCH_pipeline.json"),
                       help="path of the JSON report (default: BENCH_pipeline.json)")
    bench.add_argument("--profile", action="store_true",
                       help="run each phase once under cProfile and print the "
                            "top-20 functions by cumulative time per phase "
                            "(use --jobs 1 to capture the shard workers "
                            "inline) instead of timing repeats")
    bench.add_argument("--chaos", action="store_true",
                       help="additionally run the chaos harness: SIGKILL a "
                            "shard worker mid-replay, verify the recovered "
                            "trace digest matches an undisturbed run, and "
                            "measure supervised-pool overhead against the "
                            "unsupervised baseline (recorded under the "
                            "'chaos' key of the JSON report)")
    bench.add_argument("--chaos-dir", type=Path, default=Path("BENCH_chaos"),
                       help="checkpoint directory of the --chaos replay; "
                            "its run directory keeps the events.jsonl "
                            "recording the injected kill/retry sequence "
                            "(inspect with 'repro events DIR'; default: "
                            "BENCH_chaos)")

    whatif = subparsers.add_parser(
        "whatif", help="replay once, then sweep storage policies offline "
                       "over the trace columns")
    whatif.add_argument("--users", type=int, default=400,
                        help="number of synthetic users (default: 400)")
    whatif.add_argument("--days", type=float, default=5.0,
                        help="trace duration in days (default: 5)")
    whatif.add_argument("--seed", type=int, default=2014,
                        help="random seed (default: 2014)")
    whatif.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the one sharded replay "
                             "(default: 1)")
    whatif.add_argument("--delta-factor", type=float, default=0.05,
                        help="delta-update upload size factor (default: 0.05)")
    whatif.add_argument("--tier-age-days", type=float, default=1.0,
                        help="idle days before contents migrate to the cold "
                             "tier (default: 1)")
    whatif.add_argument("--json", type=Path, default=None,
                        help="also write the sweep result as JSON")
    _add_resume_options(whatif)

    faultsweep = subparsers.add_parser(
        "faultsweep", help="replay once through a faulted cluster, then "
                           "sweep mitigation policies offline over the "
                           "faulted trace")
    faultsweep.add_argument("--users", type=int, default=400,
                            help="number of synthetic users (default: 400)")
    faultsweep.add_argument("--days", type=float, default=5.0,
                            help="trace duration in days (default: 5)")
    faultsweep.add_argument("--seed", type=int, default=2014,
                            help="random seed (default: 2014)")
    faultsweep.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the one sharded "
                                 "replay (default: 1)")
    faultsweep.add_argument("--detection-seconds", type=float, default=60.0,
                            help="operator reaction delay of the drain/"
                                 "disable policies (default: 60)")
    faultsweep.add_argument("--json", type=Path, default=None,
                            help="also write the sweep result as JSON")
    _add_resume_options(faultsweep)

    events = subparsers.add_parser(
        "events", help="inspect (or tail) a run's events.jsonl: spans, "
                       "shard dispatch/retry/quarantine, checkpoint "
                       "spills, fault windows, shutdowns")
    events.add_argument("dir", type=Path,
                        help="an events.jsonl file, a run directory, or a "
                             "checkpoint root (most recent run wins)")
    events.add_argument("--json", action="store_true",
                        help="print raw JSON lines instead of the "
                             "formatted view")
    events.add_argument("--follow", action="store_true",
                        help="keep the log open and print events as they "
                             "are appended (Ctrl-C to stop)")

    verify = subparsers.add_parser(
        "verify", help="audit checkpoint run directories: manifest "
                       "consistency, per-shard checksums, orphan/foreign/"
                       "truncated files (exit code 4 on findings)")
    verify.add_argument("dir", type=Path,
                        help="a checkpoint root (as passed to "
                             "--checkpoint-dir) or one run directory")
    verify.add_argument("--json", action="store_true",
                        help="print the findings as JSON instead of text")
    verify.add_argument("--shallow", action="store_true",
                        help="skip reconstructing checksum-clean payloads "
                             "(checksum/manifest checks only)")
    return parser


def _checkpoint_kwargs(args: argparse.Namespace) -> dict:
    """Replay passthrough kwargs from the --checkpoint-dir/--resume flags."""
    kwargs = {"checkpoint_dir": getattr(args, "checkpoint_dir", None),
              "resume": getattr(args, "resume", False),
              "shutdown": getattr(args, "shutdown_controller", None)}
    if getattr(args, "progress", False):
        kwargs["progress"] = _progress_printer()
    return kwargs


def _progress_printer(stream=None):
    """A ``progress`` callback rendering one live line on stderr."""
    stream = stream or sys.stderr

    def show(snapshot: dict) -> None:
        eta = snapshot.get("eta_seconds")
        eta_text = f" eta {eta:.0f}s" if eta is not None else ""
        done = snapshot.get("shards_done", 0)
        total = snapshot.get("shards_total", 0)
        line = (f"replay {done}/{total} shards "
                f"{snapshot.get('fraction', 0.0) * 100.0:5.1f}%  "
                f"{snapshot.get('records_per_second', 0.0):,.0f} rec/s"
                f"{eta_text}  retries {snapshot.get('retries', 0)} "
                f"quarantined {snapshot.get('quarantined', 0)}")
        end = "\n" if total and done >= total else ""
        stream.write("\r" + line.ljust(78) + end)
        stream.flush()

    return show


def _dump_metrics(args: argparse.Namespace, out) -> int:
    """Write the final registry snapshot when --metrics was given."""
    path = getattr(args, "metrics", None)
    if path is None:
        return 0
    from repro.util import telemetry

    return _write_json_artifact(path, telemetry.get_registry().snapshot(),
                                out)


def _write_json_artifact(path: Path, payload, out) -> int:
    """Atomically write a JSON artifact; report failure as exit code 2."""
    from repro.util.atomicio import atomic_write_json

    try:
        atomic_write_json(path, payload)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return 2
    print(f"Wrote {path}", file=out)
    return 0


def _build_dataset(args: argparse.Namespace, out=None) -> TraceDataset:
    config = WorkloadConfig.scaled(users=args.users, days=args.days, seed=args.seed)
    generator = SyntheticTraceGenerator(config)
    if args.no_backend:
        return generator.generate()
    cluster = U1Cluster(ClusterConfig(seed=args.seed))
    # Fused pipeline: plan globally, materialize inside the replay workers.
    dataset = cluster.replay_plan(generator.plan(),
                                  n_jobs=getattr(args, "jobs", 1),
                                  **_checkpoint_kwargs(args))
    if out is not None and getattr(args, "checkpoint_dir", None) is not None:
        stats = cluster.last_replay_stats or {}
        print(f"checkpoint: resumed {len(stats.get('shards_resumed', []))} "
              f"shard(s), executed {len(stats.get('completion_order', []))} "
              f"({stats.get('checkpoint_dir')})", file=out)
        if stats.get("checkpoint_disabled"):
            print("checkpoint: degraded to in-memory "
                  f"({stats['checkpoint_disabled']})", file=out)
    return dataset


def _maybe_validate(dataset: TraceDataset, args: argparse.Namespace) -> int:
    """Run the --validate invariant checks; 0 when clean (or not asked)."""
    if not getattr(args, "validate", False):
        return EXIT_OK
    from repro.trace.validate import validate_dataset

    violations = validate_dataset(dataset)
    if violations:
        print("error: trace invariant validation failed:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return EXIT_CORRUPTION
    return EXIT_OK


def _command_generate(args: argparse.Namespace, out) -> int:
    dataset = _build_dataset(args, out)
    status = _maybe_validate(dataset, args)
    if status:
        return status  # do not write a trace that failed validation
    if args.anonymize:
        dataset = Anonymizer().anonymize(dataset)
    paths = write_trace_directory(args.out, dataset)
    print(f"Wrote {len(paths)} logfiles ({len(dataset)} records) to {args.out}",
          file=out)
    print(format_table3(dataset), file=out)
    return 0


def _command_analyze(args: argparse.Namespace, out) -> int:
    dataset = read_trace_directory(args.trace_dir, skip_malformed=True)
    if dataset.is_empty:
        print(f"No records found under {args.trace_dir}", file=out)
        return 1
    print(format_report(dataset), file=out)
    return 0


def _command_summarize(args: argparse.Namespace, out) -> int:
    dataset = read_trace_directory(args.trace_dir, skip_malformed=True)
    if dataset.is_empty:
        print(f"No records found under {args.trace_dir}", file=out)
        return 1
    print(format_table3(dataset), file=out)
    return 0


def _command_report(args: argparse.Namespace, out) -> int:
    dataset = _build_dataset(args, out)
    status = _maybe_validate(dataset, args)
    if status:
        return status
    print(format_report(dataset), file=out)
    return 0


def _command_bench(args: argparse.Namespace, out) -> int:
    from repro.bench import format_summary, run_benchmark, run_profile, write_report

    if args.profile:
        run_profile(users=args.users, days=args.days, seed=args.seed,
                    n_jobs=args.jobs, out=out)
        return 0
    result = run_benchmark(users=args.users, days=args.days, seed=args.seed,
                           repeats=args.repeats, n_jobs=args.jobs,
                           chaos=args.chaos,
                           chaos_dir=args.chaos_dir if args.chaos else None)
    print(format_summary(result), file=out)
    try:
        path = write_report(result, args.out)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    print(f"Wrote {path}", file=out)
    return 0


def _command_whatif(args: argparse.Namespace, out) -> int:
    import time

    from repro.util.units import DAY
    from repro.whatif.sweep import run_sweep

    config = WorkloadConfig.scaled(users=args.users, days=args.days,
                                   seed=args.seed)
    cluster = U1Cluster(ClusterConfig(seed=args.seed))
    started = time.perf_counter()
    dataset = cluster.replay_plan(SyntheticTraceGenerator(config).plan(),
                                  n_jobs=args.jobs,
                                  **_checkpoint_kwargs(args))
    replay_seconds = time.perf_counter() - started

    # The dataset goes in un-decoded: the sweep timing then covers the
    # one-off column decode as well as the policy passes.
    sweep = run_sweep(
        dataset,
        cost_model=cluster.config.cost_model,
        chunk_bytes=cluster.config.multipart_chunk_bytes,
        end_time=cluster.last_replay_stats["timeline_end"],
        delta_update_factor=args.delta_factor,
        tier_age=args.tier_age_days * DAY)

    print(f"Replayed {len(dataset)} records in {replay_seconds:.3f}s; "
          f"swept {len(sweep.outcomes)} policies offline in "
          f"{sweep.seconds:.3f}s ({sweep.seconds / replay_seconds:.2f}x "
          f"one replay)", file=out)
    print(sweep.format_table(), file=out)
    print("(offline estimates: global store, uninterrupted uploads; "
          "see repro.whatif)", file=out)
    if args.json is not None:
        payload = sweep.to_json()
        payload["replay_seconds"] = replay_seconds
        payload["config"] = {"users": args.users, "days": args.days,
                             "seed": args.seed, "jobs": args.jobs}
        return _write_json_artifact(args.json, payload, out)
    return 0


def _command_faultsweep(args: argparse.Namespace, out) -> int:
    import time

    from repro.faults.spec import default_fault_plan
    from repro.faults.sweep import run_fault_sweep
    from repro.util.units import DAY

    config = WorkloadConfig.scaled(users=args.users, days=args.days,
                                   seed=args.seed)
    plan = default_fault_plan(config.start_time, args.days * DAY,
                              seed=args.seed)
    cluster = U1Cluster(ClusterConfig(seed=args.seed, faults=plan))
    started = time.perf_counter()
    dataset = cluster.replay_plan(SyntheticTraceGenerator(config).plan(),
                                  n_jobs=args.jobs,
                                  **_checkpoint_kwargs(args))
    replay_seconds = time.perf_counter() - started

    # The dataset goes in un-decoded: the sweep timing then covers the
    # one-off column decode as well as the policy passes.
    sweep = run_fault_sweep(dataset, cluster.fault_schedule,
                            config=cluster.config,
                            detection_seconds=args.detection_seconds)

    print(f"Replayed {len(dataset)} records through the faulted cluster in "
          f"{replay_seconds:.3f}s; evaluated {len(sweep.outcomes)} "
          f"mitigation policies offline in {sweep.seconds:.3f}s "
          f"({sweep.seconds / replay_seconds:.2f}x one replay)", file=out)
    print(sweep.format_table(), file=out)
    print("(none/retry pin the live counters exactly; hedge/drain/disable "
          "are offline estimates — see repro.faults)", file=out)
    if args.json is not None:
        payload = sweep.to_json()
        payload["replay_seconds"] = replay_seconds
        payload["config"] = {"users": args.users, "days": args.days,
                             "seed": args.seed, "jobs": args.jobs}
        return _write_json_artifact(args.json, payload, out)
    return 0


def _command_events(args: argparse.Namespace, out) -> int:
    import json
    import time as _time

    from repro.util.telemetry import find_events_file, read_events

    path = find_events_file(args.dir)
    if path is None:
        print(f"No events.jsonl found under {args.dir}", file=out)
        return EXIT_EMPTY

    def render(record: dict) -> str:
        if args.json:
            return json.dumps(record, separators=(",", ":"), default=str)
        ts = record.get("ts")
        ts_text = f"{ts:.3f}" if isinstance(ts, (int, float)) else str(ts)
        fields = " ".join(f"{key}={value}" for key, value in record.items()
                          if key not in ("ts", "event"))
        return f"{ts_text}  {record.get('event', '?'):<18} {fields}".rstrip()

    for record in read_events(path):
        print(render(record), file=out)
    if not args.follow:
        return EXIT_OK
    # Tail mode: poll for appended complete lines until interrupted.  The
    # log is append-only (single O_APPEND writer per event), so seeking to
    # the end and reading forward can never miss or re-read an event.
    try:
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(0, 2)
            buffered = ""
            while True:
                chunk = handle.readline()
                if not chunk:
                    _time.sleep(0.25)
                    continue
                buffered += chunk
                if not buffered.endswith("\n"):
                    continue  # torn line still being written
                line, buffered = buffered.strip(), ""
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                print(render(record), file=out)
    except KeyboardInterrupt:
        return EXIT_OK


def _command_verify(args: argparse.Namespace, out) -> int:
    import json

    from repro.util.verify import verify_tree

    results = verify_tree(args.dir, deep=not args.shallow)
    if not results:
        print(f"No run directories found under {args.dir}", file=out)
        return EXIT_EMPTY
    total = sum(len(findings) for findings in results.values())
    fatal = sum(1 for findings in results.values()
                for finding in findings if finding.severity == "fatal")
    if args.json:
        print(json.dumps({
            "root": str(args.dir),
            "runs": {run: [finding.as_dict() for finding in findings]
                     for run, findings in results.items()},
            "findings": total,
            "fatal": fatal,
            "repairable": total - fatal,
            "clean": total == 0,
        }, indent=2), file=out)
    else:
        for run, findings in results.items():
            print(f"{run}: " + ("clean" if not findings
                                else f"{len(findings)} finding(s)"), file=out)
            for finding in findings:
                print(f"  {finding}", file=out)
        print(f"verify: {len(results)} run(s), {total} finding(s) "
              f"({fatal} fatal, {total - fatal} repairable)", file=out)
    return EXIT_CORRUPTION if total else EXIT_OK


_COMMANDS = {
    "generate": _command_generate,
    "analyze": _command_analyze,
    "summarize": _command_summarize,
    "report": _command_report,
    "bench": _command_bench,
    "whatif": _command_whatif,
    "faultsweep": _command_faultsweep,
    "events": _command_events,
    "verify": _command_verify,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and \
            getattr(args, "checkpoint_dir", None) is None:
        parser.error("--resume requires --checkpoint-dir")
    handler = _COMMANDS[args.command]
    if args.command not in _REPLAY_COMMANDS:
        return handler(args, out)
    max_rss_mb = getattr(args, "max_rss_mb", None)
    with graceful_shutdown(max_rss_mb * 1024 * 1024
                           if max_rss_mb else None) as controller:
        args.shutdown_controller = controller
        try:
            code = handler(args, out)
        except RunInterrupted as exc:
            resumable = getattr(args, "checkpoint_dir", None) is not None
            hint = ("re-run with --resume to continue" if resumable
                    else "completed work was not checkpointed "
                         "(use --checkpoint-dir)")
            print(f"interrupted: {exc} — {exc.completed} shard(s) "
                  f"completed, {exc.remaining} remaining; {hint}",
                  file=sys.stderr)
            _dump_metrics(args, out)
            return EXIT_INTERRUPTED
        return code or _dump_metrics(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
