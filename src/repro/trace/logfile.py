"""Logfile naming and CSV (de)serialisation of trace records.

Section 4 of the paper describes the raw material of the measurement: one
logfile per server process and day, named like
``production-whitecurrant-23-20140128`` — the ``production`` prefix, the
physical machine name, the process number (unique within a machine) and the
date the logfile was "cut".  Each logfile is strictly sequential and
timestamped.

This module reproduces that on-disk format so that a synthetic trace can be
round-tripped through files exactly like the released dataset: every record
becomes one CSV row whose first column is the request type (``storage_done``,
``rpc`` or ``session``).
"""

from __future__ import annotations

import csv
import datetime as _dt
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.dataset import TraceDataset
from repro.trace.records import (
    ApiOperation,
    NodeKind,
    RpcName,
    RpcRecord,
    SessionEvent,
    SessionRecord,
    StorageRecord,
    VolumeType,
)

__all__ = [
    "LogfileName",
    "write_logfile",
    "read_logfile",
    "write_trace_directory",
    "read_trace_directory",
    "ParseError",
]


class ParseError(ValueError):
    """Raised when a logfile row cannot be parsed.

    The paper notes that approximately 1 % of log lines could not be parsed;
    :func:`read_logfile` can either raise or count-and-skip such lines.
    """


@dataclass(frozen=True)
class LogfileName:
    """Structured form of a U1 logfile name."""

    environment: str
    machine: str
    process: int
    date: _dt.date

    def __str__(self) -> str:
        return (f"{self.environment}-{self.machine}-{self.process}-"
                f"{self.date.strftime('%Y%m%d')}")

    @classmethod
    def parse(cls, name: str) -> "LogfileName":
        """Parse a name like ``production-whitecurrant-23-20140128``.

        Machine names may themselves contain dashes, therefore the name is
        split from the right: the last component is the date, the one before
        it the process number.
        """
        stem = name.rsplit(".", 1)[0] if name.endswith(".csv") else name
        parts = stem.split("-")
        if len(parts) < 4:
            raise ParseError(f"not a valid logfile name: {name!r}")
        date_part, process_part = parts[-1], parts[-2]
        environment = parts[0]
        machine = "-".join(parts[1:-2])
        if not machine:
            raise ParseError(f"missing machine name in logfile name: {name!r}")
        if len(date_part) != 8 or not date_part.isdigit():
            raise ParseError(f"not a valid logfile name: {name!r}")
        try:
            process = int(process_part)
            date = _dt.datetime.strptime(date_part, "%Y%m%d").date()
        except ValueError as exc:
            raise ParseError(f"not a valid logfile name: {name!r}") from exc
        return cls(environment=environment, machine=machine, process=process, date=date)

    @classmethod
    def for_record(cls, record: StorageRecord | RpcRecord | SessionRecord,
                   environment: str = "production") -> "LogfileName":
        """Logfile name under which ``record`` would be stored."""
        date = _dt.datetime.fromtimestamp(record.timestamp, tz=_dt.timezone.utc).date()
        return cls(environment=environment, machine=record.server,
                   process=record.process, date=date)


# ---------------------------------------------------------------------------
# Row (de)serialisation
# ---------------------------------------------------------------------------

_STORAGE_KIND = "storage_done"
_RPC_KIND = "rpc"
_SESSION_KIND = "session"


def _storage_to_row(r: StorageRecord) -> list[str]:
    return [
        _STORAGE_KIND, f"{r.timestamp:.6f}", r.server, str(r.process),
        str(r.user_id), str(r.session_id), r.operation.value, str(r.node_id),
        str(r.volume_id), r.volume_type.value, r.node_kind.value,
        str(r.size_bytes), r.content_hash, r.extension,
        "1" if r.is_update else "0", str(r.shard_id),
        "1" if r.caused_by_attack else "0", r.error_kind, str(r.retries),
    ]


def _rpc_to_row(r: RpcRecord) -> list[str]:
    return [
        _RPC_KIND, f"{r.timestamp:.6f}", r.server, str(r.process),
        str(r.user_id), str(r.session_id), r.rpc.value, str(r.shard_id),
        f"{r.service_time:.6f}",
        r.api_operation.value if r.api_operation is not None else "",
        "1" if r.caused_by_attack else "0",
    ]


def _session_to_row(r: SessionRecord) -> list[str]:
    return [
        _SESSION_KIND, f"{r.timestamp:.6f}", r.server, str(r.process),
        str(r.user_id), str(r.session_id), r.event.value,
        f"{r.session_length:.6f}", str(r.storage_operations),
        "1" if r.caused_by_attack else "0",
    ]


def _row_to_record(row: list[str]) -> StorageRecord | RpcRecord | SessionRecord:
    if not row:
        raise ParseError("empty row")
    kind = row[0]
    try:
        if kind == _STORAGE_KIND:
            return StorageRecord(
                timestamp=float(row[1]), server=row[2], process=int(row[3]),
                user_id=int(row[4]), session_id=int(row[5]),
                operation=ApiOperation(row[6]), node_id=int(row[7]),
                volume_id=int(row[8]), volume_type=VolumeType(row[9]),
                node_kind=NodeKind(row[10]), size_bytes=int(row[11]),
                content_hash=row[12], extension=row[13],
                is_update=row[14] == "1", shard_id=int(row[15]),
                caused_by_attack=row[16] == "1",
                # Outcome columns postdate the original layout; rows written
                # before fault injection landed simply lack them.
                error_kind=row[17] if len(row) > 17 else "",
                retries=int(row[18]) if len(row) > 18 else 0,
            )
        if kind == _RPC_KIND:
            return RpcRecord(
                timestamp=float(row[1]), server=row[2], process=int(row[3]),
                user_id=int(row[4]), session_id=int(row[5]),
                rpc=RpcName(row[6]), shard_id=int(row[7]),
                service_time=float(row[8]),
                api_operation=ApiOperation(row[9]) if row[9] else None,
                caused_by_attack=row[10] == "1",
            )
        if kind == _SESSION_KIND:
            return SessionRecord(
                timestamp=float(row[1]), server=row[2], process=int(row[3]),
                user_id=int(row[4]), session_id=int(row[5]),
                event=SessionEvent(row[6]), session_length=float(row[7]),
                storage_operations=int(row[8]), caused_by_attack=row[9] == "1",
            )
    except (ValueError, IndexError) as exc:
        raise ParseError(f"malformed {kind!r} row: {row!r}") from exc
    raise ParseError(f"unknown request type {kind!r}")


# ---------------------------------------------------------------------------
# Logfile-level IO
# ---------------------------------------------------------------------------

def write_logfile(path: str | Path,
                  records: Iterable[StorageRecord | RpcRecord | SessionRecord]) -> int:
    """Write records to a single CSV logfile; returns the number of rows."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for record in records:
            if isinstance(record, StorageRecord):
                writer.writerow(_storage_to_row(record))
            elif isinstance(record, RpcRecord):
                writer.writerow(_rpc_to_row(record))
            elif isinstance(record, SessionRecord):
                writer.writerow(_session_to_row(record))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported record type: {type(record)!r}")
            count += 1
    return count


def read_logfile(path: str | Path, skip_malformed: bool = False
                 ) -> Iterator[StorageRecord | RpcRecord | SessionRecord]:
    """Yield records from a CSV logfile.

    With ``skip_malformed=True`` unparsable rows are silently skipped, which
    mirrors the ~1 % parse-failure rate the paper reports for the production
    logs; otherwise :class:`ParseError` is raised.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        for row in csv.reader(handle):
            try:
                yield _row_to_record(row)
            except ParseError:
                if not skip_malformed:
                    raise


# ---------------------------------------------------------------------------
# Directory-level IO (one logfile per server process and day)
# ---------------------------------------------------------------------------

def write_trace_directory(directory: str | Path, dataset: TraceDataset,
                          environment: str = "production") -> list[Path]:
    """Split a dataset into per-process-per-day logfiles under ``directory``.

    Returns the list of logfile paths written, sorted by name.  Within each
    logfile rows are strictly ordered by timestamp, as in the real system.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    buckets: dict[LogfileName, list] = {}
    for stream in (dataset.storage, dataset.rpc, dataset.sessions):
        for record in stream:
            name = LogfileName.for_record(record, environment=environment)
            buckets.setdefault(name, []).append(record)
    paths = []
    for name, records in buckets.items():
        records.sort(key=lambda r: r.timestamp)
        path = directory / f"{name}.csv"
        write_logfile(path, records)
        paths.append(path)
    return sorted(paths)


def read_trace_directory(directory: str | Path, skip_malformed: bool = False) -> TraceDataset:
    """Merge every logfile under ``directory`` back into a :class:`TraceDataset`."""
    directory = Path(directory)
    dataset = TraceDataset()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".csv"):
            continue
        LogfileName.parse(entry)  # validates the naming convention
        for record in read_logfile(directory / entry, skip_malformed=skip_malformed):
            if isinstance(record, StorageRecord):
                dataset.add_storage(record)
            elif isinstance(record, RpcRecord):
                dataset.add_rpc(record)
            else:
                dataset.add_session(record)
    dataset.sort()
    return dataset
