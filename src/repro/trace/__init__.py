"""Trace substrate: record schema, logfiles, dataset container.

The U1 measurement (Section 4 of the paper) is built from per-process
logfiles captured at the API and RPC server stages.  Each logfile is strictly
sequential and timestamped, named ``production-<host>-<proc>-<YYYYMMDD>``;
the merged trace contains three request types:

* ``storage`` / ``storage_done`` — API operations issued by desktop clients
  (uploads, downloads, makes, unlinks, ...), captured here as
  :class:`~repro.trace.records.StorageRecord`.
* ``rpc`` — the translation of API operations into RPC calls against the
  metadata store, captured as :class:`~repro.trace.records.RpcRecord`
  together with the measured service time and the shard contacted.
* ``session`` — session management (connects, disconnects, authentication),
  captured as :class:`~repro.trace.records.SessionRecord`.

:class:`~repro.trace.dataset.TraceDataset` is the in-memory container the
analyses in :mod:`repro.core` consume; :mod:`repro.trace.logfile` provides the
CSV logfile serialisation; :mod:`repro.trace.anonymize` reproduces the
anonymisation Canonical applied before releasing the dataset.
"""

from repro.trace.records import (
    ApiOperation,
    NodeKind,
    RpcClass,
    RpcName,
    RpcRecord,
    SessionEvent,
    SessionRecord,
    StorageRecord,
    VolumeType,
    TRACE_EPOCH,
)
from repro.trace.dataset import TraceDataset
from repro.trace.logfile import LogfileName, read_logfile, write_logfile
from repro.trace.anonymize import Anonymizer
from repro.trace.stats import TraceSummary, summarize

__all__ = [
    "ApiOperation",
    "NodeKind",
    "RpcClass",
    "RpcName",
    "RpcRecord",
    "SessionEvent",
    "SessionRecord",
    "StorageRecord",
    "VolumeType",
    "TRACE_EPOCH",
    "TraceDataset",
    "LogfileName",
    "read_logfile",
    "write_logfile",
    "Anonymizer",
    "TraceSummary",
    "summarize",
]
