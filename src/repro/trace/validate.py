"""End-of-run trace invariant validation (``--validate``).

A replayed :class:`~repro.trace.dataset.TraceDataset` is supposed to hold
these invariants *by construction* — shard sinks emit in timestamp order,
the merge is order-preserving, every event carries the session that
produced it.  ``--validate`` re-checks them on the merged result anyway:
it is the cheap end-to-end tripwire that catches a merge regression, a
corrupted resumed checkpoint that slipped past the checksums, or a fault
column drifting from the error taxonomy — *before* the trace feeds any
analysis.  The chaos harness runs it unconditionally.

Checks, all vectorised on the columnar form:

* **Monotonic timelines** — each stream's ``timestamp`` column is
  non-decreasing (the merged-sorted invariant every slicing primitive
  relies on).
* **Schema conformance** — every field the stream spec declares is
  present with the declared dtype; enum codes stay inside their code
  tables; factorised string codes stay inside their category tables.
* **Session referential integrity** — every storage/RPC event's
  ``session_id`` appears in the session stream, and a session maps to
  exactly one ``user_id`` across all three streams.  ``session_id 0`` is
  exempt: it is the system sentinel on maintenance RPCs (the uploadjob
  GC probes of :mod:`repro.backend.replay_shard`), which no client
  session ever produced — real session ids start at 1.
* **Fault-column consistency** — ``error_kind`` values come from the
  back-end error taxonomy (:data:`repro.backend.errors.ERROR_KINDS`) and
  ``retries`` is never negative.

Returns human-readable violation strings; an empty list is a clean trace.
"""

from __future__ import annotations

import numpy as np

from repro.backend.errors import ERROR_KINDS

__all__ = ["validate_dataset"]

_STREAMS = ("storage", "rpc", "sessions")


def _stream(dataset, name: str):
    return getattr(dataset, f"_{name}")


def _check_monotonic(dataset, violations: list) -> None:
    for name in _STREAMS:
        stream = _stream(dataset, name)
        if len(stream) < 2:
            continue
        ts = stream.column("timestamp")
        if np.any(np.diff(ts) < 0):
            position = int(np.argmax(np.diff(ts) < 0))
            violations.append(
                f"{name}: timestamps not monotonic at row {position + 1} "
                f"({ts[position + 1]:.6f} after {ts[position]:.6f})")


def _check_schema(dataset, violations: list) -> None:
    for name in _STREAMS:
        stream = _stream(dataset, name)
        spec = stream.spec
        if len(stream) == 0:
            continue
        for field in spec.fields:
            kind = spec.kinds[field]
            if kind is object:
                codes, categories = stream.codes(field)
                if not np.issubdtype(codes.dtype, np.integer):
                    violations.append(
                        f"{name}.{field}: factorised codes are "
                        f"{codes.dtype}, expected integer")
                elif len(codes) and (codes.min() < 0
                                     or codes.max() >= len(categories)):
                    violations.append(
                        f"{name}.{field}: factorised code out of range "
                        f"for {len(categories)} categories")
                continue
            column = stream.column(field)
            if len(column) != len(stream):
                violations.append(
                    f"{name}.{field}: column length {len(column)} != "
                    f"stream length {len(stream)}")
                continue
            if kind == "enum":
                if not np.issubdtype(column.dtype, np.integer):
                    violations.append(
                        f"{name}.{field}: enum codes are {column.dtype}, "
                        f"expected integer")
                    continue
                table = spec.decode[field]
                if len(column) and (column.min() < -1
                                    or column.max() >= len(table)):
                    violations.append(
                        f"{name}.{field}: enum code out of range for "
                        f"{len(table)} members")
            elif column.dtype != np.dtype(kind):
                violations.append(
                    f"{name}.{field}: dtype {column.dtype}, expected "
                    f"{np.dtype(kind)}")


def _session_user_map(dataset, violations: list) -> dict[int, int] | None:
    """session_id -> user_id from the session stream (None when ambiguous)."""
    stream = dataset._sessions
    if len(stream) == 0:
        return {}
    session_ids = stream.column("session_id")
    user_ids = stream.column("user_id")
    pairs = np.unique(np.stack([session_ids, user_ids], axis=1), axis=0)
    unique_sessions, counts = np.unique(pairs[:, 0], return_counts=True)
    if np.any(counts > 1):
        culprit = int(unique_sessions[np.argmax(counts > 1)])
        violations.append(
            f"sessions: session_id {culprit} maps to multiple user_ids")
        return None
    return dict(zip(pairs[:, 0].tolist(), pairs[:, 1].tolist()))


def _check_referential(dataset, violations: list) -> None:
    mapping = _session_user_map(dataset, violations)
    if mapping is None:
        return
    known = np.fromiter(mapping.keys(), dtype=np.int64,
                        count=len(mapping)) if mapping else \
        np.empty(0, dtype=np.int64)
    for name in ("storage", "rpc"):
        stream = _stream(dataset, name)
        if len(stream) == 0:
            continue
        session_ids = stream.column("session_id")
        user_ids = stream.column("user_id")
        missing = (session_ids != 0) & ~np.isin(session_ids, known)
        if np.any(missing):
            culprit = int(session_ids[np.argmax(missing)])
            violations.append(
                f"{name}: {int(missing.sum())} event(s) reference "
                f"session_id(s) absent from the session stream "
                f"(e.g. {culprit})")
            continue
        client = session_ids != 0
        session_ids = session_ids[client]
        user_ids = user_ids[client]
        expected = np.fromiter((mapping[s] for s in session_ids.tolist()),
                               dtype=np.int64, count=len(session_ids))
        mismatched = expected != user_ids
        if np.any(mismatched):
            culprit = int(session_ids[np.argmax(mismatched)])
            violations.append(
                f"{name}: {int(mismatched.sum())} event(s) disagree with "
                f"the session stream about the user of session {culprit}")


def _check_faults(dataset, violations: list) -> None:
    stream = dataset._storage
    if len(stream) == 0:
        return
    codes, categories = stream.codes("error_kind")
    valid = {"", None} | set(ERROR_KINDS)
    unknown = sorted(str(c) for c in categories if c not in valid)
    if unknown:
        violations.append(
            f"storage.error_kind: unknown value(s) {unknown} (not in the "
            f"back-end error taxonomy)")
    retries = stream.column("retries")
    if len(retries) and retries.min() < 0:
        violations.append(
            f"storage.retries: negative retry count ({int(retries.min())})")


def validate_dataset(dataset) -> list[str]:
    """Check the trace invariants; return violations (empty when clean)."""
    violations: list[str] = []
    _check_monotonic(dataset, violations)
    _check_schema(dataset, violations)
    _check_referential(dataset, violations)
    _check_faults(dataset, violations)
    return violations
