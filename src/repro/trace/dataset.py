"""The in-memory trace dataset consumed by all analyses.

A :class:`TraceDataset` is the merge of every per-process logfile for the
measurement window (Section 4.1): storage records, RPC records and session
records.  The class offers the slicing primitives the analyses need —
filtering by time window, by user, by operation — plus merging and sorting,
mirroring how the paper reconstructs per-user sequential activity ("to have a
strictly sequential notion of the activity of a user we should take into
account the U1 session and sort the trace by timestamp").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.trace.records import (
    ApiOperation,
    RpcRecord,
    SessionEvent,
    SessionRecord,
    StorageRecord,
)

__all__ = ["TraceDataset"]


@dataclass
class TraceDataset:
    """Container of the three record streams of a U1 back-end trace."""

    storage: list[StorageRecord] = field(default_factory=list)
    rpc: list[RpcRecord] = field(default_factory=list)
    sessions: list[SessionRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        return len(self.storage) + len(self.rpc) + len(self.sessions)

    @property
    def is_empty(self) -> bool:
        """True when the dataset holds no records at all."""
        return len(self) == 0

    # -------------------------------------------------------------- mutation
    def add_storage(self, record: StorageRecord) -> None:
        """Append a storage record."""
        self.storage.append(record)

    def add_rpc(self, record: RpcRecord) -> None:
        """Append an RPC record."""
        self.rpc.append(record)

    def add_session(self, record: SessionRecord) -> None:
        """Append a session record."""
        self.sessions.append(record)

    def extend(self, other: "TraceDataset") -> None:
        """Merge another dataset into this one (records are shared, not copied)."""
        self.storage.extend(other.storage)
        self.rpc.extend(other.rpc)
        self.sessions.extend(other.sessions)

    def sort(self) -> None:
        """Sort every stream by timestamp in place."""
        self.storage.sort(key=lambda r: r.timestamp)
        self.rpc.sort(key=lambda r: r.timestamp)
        self.sessions.sort(key=lambda r: r.timestamp)

    # -------------------------------------------------------------- time span
    def time_span(self) -> tuple[float, float]:
        """Return ``(first_timestamp, last_timestamp)`` across all streams."""
        timestamps = [r.timestamp for r in self.storage]
        timestamps += [r.timestamp for r in self.rpc]
        timestamps += [r.timestamp for r in self.sessions]
        if not timestamps:
            raise ValueError("time span of an empty dataset is undefined")
        return min(timestamps), max(timestamps)

    @property
    def duration(self) -> float:
        """Length of the trace in seconds."""
        start, end = self.time_span()
        return end - start

    # -------------------------------------------------------------- filtering
    def filter_time(self, start: float, end: float) -> "TraceDataset":
        """Dataset restricted to records with ``start <= timestamp < end``."""
        return TraceDataset(
            storage=[r for r in self.storage if start <= r.timestamp < end],
            rpc=[r for r in self.rpc if start <= r.timestamp < end],
            sessions=[r for r in self.sessions if start <= r.timestamp < end],
        )

    def filter_users(self, user_ids: Iterable[int]) -> "TraceDataset":
        """Dataset restricted to the given user ids."""
        wanted = set(user_ids)
        return TraceDataset(
            storage=[r for r in self.storage if r.user_id in wanted],
            rpc=[r for r in self.rpc if r.user_id in wanted],
            sessions=[r for r in self.sessions if r.user_id in wanted],
        )

    def filter_storage(self, predicate: Callable[[StorageRecord], bool]) -> list[StorageRecord]:
        """Storage records satisfying ``predicate``."""
        return [r for r in self.storage if predicate(r)]

    def without_attack_traffic(self) -> "TraceDataset":
        """Dataset with DDoS-attributed records removed.

        The paper removes "malfunctioning clients" artifacts before the
        workload analysis; analogously, analyses that characterise legitimate
        user behaviour can exclude attack traffic with this helper, while the
        anomaly-detection analysis (Fig. 5) keeps it.
        """
        return TraceDataset(
            storage=[r for r in self.storage if not r.caused_by_attack],
            rpc=[r for r in self.rpc if not r.caused_by_attack],
            sessions=[r for r in self.sessions if not r.caused_by_attack],
        )

    # ------------------------------------------------------------ aggregation
    def user_ids(self) -> set[int]:
        """Distinct user ids appearing anywhere in the trace."""
        ids = {r.user_id for r in self.storage}
        ids.update(r.user_id for r in self.rpc)
        ids.update(r.user_id for r in self.sessions)
        return ids

    def session_ids(self) -> set[int]:
        """Distinct session ids appearing anywhere in the trace."""
        ids = {r.session_id for r in self.storage}
        ids.update(r.session_id for r in self.sessions)
        return ids

    def storage_by_user(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by user id, each list sorted by time."""
        grouped: dict[int, list[StorageRecord]] = defaultdict(list)
        for record in self.storage:
            grouped[record.user_id].append(record)
        for records in grouped.values():
            records.sort(key=lambda r: r.timestamp)
        return dict(grouped)

    def storage_by_node(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by node id (files/directories).

        Only records that reference a node are included (session-level
        operations such as ListVolumes carry ``node_id == 0`` and are
        skipped).
        """
        grouped: dict[int, list[StorageRecord]] = defaultdict(list)
        for record in self.storage:
            if record.node_id:
                grouped[record.node_id].append(record)
        for records in grouped.values():
            records.sort(key=lambda r: r.timestamp)
        return dict(grouped)

    def storage_by_session(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by session id."""
        grouped: dict[int, list[StorageRecord]] = defaultdict(list)
        for record in self.storage:
            grouped[record.session_id].append(record)
        for records in grouped.values():
            records.sort(key=lambda r: r.timestamp)
        return dict(grouped)

    def iter_operations(self, *operations: ApiOperation) -> Iterator[StorageRecord]:
        """Iterate over storage records whose operation is one of ``operations``."""
        wanted = set(operations)
        for record in self.storage:
            if record.operation in wanted:
                yield record

    def uploads(self) -> list[StorageRecord]:
        """All upload (PutContent) records."""
        return [r for r in self.storage if r.operation is ApiOperation.UPLOAD]

    def downloads(self) -> list[StorageRecord]:
        """All download (GetContent) records."""
        return [r for r in self.storage if r.operation is ApiOperation.DOWNLOAD]

    def upload_bytes(self) -> int:
        """Total uploaded bytes in the trace."""
        return sum(r.size_bytes for r in self.uploads())

    def download_bytes(self) -> int:
        """Total downloaded bytes in the trace."""
        return sum(r.size_bytes for r in self.downloads())

    def completed_sessions(self) -> list[SessionRecord]:
        """DISCONNECT records, which carry session length and op counts."""
        return [r for r in self.sessions if r.event is SessionEvent.DISCONNECT]

    # ---------------------------------------------------------------- display
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceDataset(storage={len(self.storage)}, rpc={len(self.rpc)}, "
                f"sessions={len(self.sessions)})")
