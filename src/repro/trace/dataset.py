"""The in-memory trace dataset consumed by all analyses.

A :class:`TraceDataset` is the merge of every per-process logfile for the
measurement window (Section 4.1): storage records, RPC records and session
records.  The class offers the slicing primitives the analyses need —
filtering by time window, by user, by operation — plus merging and sorting,
mirroring how the paper reconstructs per-user sequential activity ("to have a
strictly sequential notion of the activity of a user we should take into
account the U1 session and sort the trace by timestamp").

Columnar engine
---------------
Internally each stream is a :class:`_Stream`: a canonical sequence of events
(either plain field tuples appended through the fast path used by the
simulator, or materialized record objects) plus a lazy cache of NumPy column
arrays.  The public record lists (:attr:`storage`, :attr:`rpc`,
:attr:`sessions`) are *views*: record objects are only built when something
actually iterates them, so a replay that is analysed through the columnar
accessors never pays for per-record object construction.

* ``append_storage_row`` / ``append_rpc_row`` / ``append_session_row`` append
  raw field tuples (positional, in record-field order) without building
  record objects.
* ``storage_column(name)`` / ``rpc_column(name)`` / ``session_column(name)``
  return cached NumPy arrays of one field.  Enum-valued fields are returned
  as integer code arrays; the code tables are exported as
  :data:`OPERATION_CODE`, :data:`RPC_CODE`, :data:`SESSION_EVENT_CODE`,
  :data:`VOLUME_TYPE_CODE` and :data:`NODE_KIND_CODE`.
* The slicing primitives (``filter_time``, ``filter_users``,
  ``without_attack_traffic``) evaluate their predicate vectorised and return
  datasets holding index views into the parent — no records are copied or
  even created until someone iterates them.
* The aggregation primitives (``time_span``, ``upload_bytes``,
  ``storage_by_user`` …) run on the column arrays (mask + ``np.bincount`` /
  argsort + split) instead of re-scanning Python lists.

Everything is backward compatible: datasets can still be built from record
lists, the stream attributes still behave as lists of records, and all
primitives return the same types (and the same record *objects*, shared with
the parent dataset) as the historical pure-Python implementation.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.trace.records import (
    ApiOperation,
    NodeKind,
    RpcName,
    RpcRecord,
    SessionEvent,
    SessionRecord,
    StorageRecord,
    VolumeType,
)

__all__ = [
    "ColumnBlock",
    "TraceDataset",
    "OPERATION_CODE",
    "RPC_CODE",
    "SESSION_EVENT_CODE",
    "VOLUME_TYPE_CODE",
    "NODE_KIND_CODE",
]


#: Integer codes used by the enum-valued column arrays.
OPERATION_CODE: dict[ApiOperation, int] = {op: i for i, op in enumerate(ApiOperation)}
RPC_CODE: dict[RpcName, int] = {rpc: i for i, rpc in enumerate(RpcName)}
SESSION_EVENT_CODE: dict[SessionEvent, int] = {ev: i for i, ev in enumerate(SessionEvent)}
VOLUME_TYPE_CODE: dict[VolumeType, int] = {vt: i for i, vt in enumerate(VolumeType)}
NODE_KIND_CODE: dict[NodeKind, int] = {nk: i for i, nk in enumerate(NodeKind)}

_UPLOAD_CODE = OPERATION_CODE[ApiOperation.UPLOAD]
_DOWNLOAD_CODE = OPERATION_CODE[ApiOperation.DOWNLOAD]
_DISCONNECT_CODE = SESSION_EVENT_CODE[SessionEvent.DISCONNECT]


class _StreamSpec:
    """Static description of one record stream (fields, dtypes, factory)."""

    __slots__ = ("factory", "fields", "index", "kinds", "codes", "decode")

    def __init__(self, factory, fields: tuple[str, ...],
                 kinds: dict[str, object], codes: dict[str, dict]):
        self.factory = factory
        self.fields = fields
        self.index = {name: i for i, name in enumerate(fields)}
        self.kinds = kinds
        self.codes = codes
        # Reverse enum tables: code -> enum member (codes are 0..n-1 in
        # declaration order, so a list indexes directly).
        self.decode = {name: list(mapping) for name, mapping in codes.items()}


_STORAGE_SPEC = _StreamSpec(
    StorageRecord,
    ("timestamp", "server", "process", "user_id", "session_id", "operation",
     "node_id", "volume_id", "volume_type", "node_kind", "size_bytes",
     "content_hash", "extension", "is_update", "shard_id", "caused_by_attack",
     "error_kind", "retries"),
    kinds={"timestamp": np.float64, "server": object, "process": np.int64,
           "user_id": np.int64, "session_id": np.int64, "operation": "enum",
           "node_id": np.int64, "volume_id": np.int64, "volume_type": "enum",
           "node_kind": "enum", "size_bytes": np.int64, "content_hash": object,
           "extension": object, "is_update": np.bool_, "shard_id": np.int64,
           "caused_by_attack": np.bool_, "error_kind": object,
           "retries": np.int64},
    codes={"operation": OPERATION_CODE, "volume_type": VOLUME_TYPE_CODE,
           "node_kind": NODE_KIND_CODE},
)

_RPC_SPEC = _StreamSpec(
    RpcRecord,
    ("timestamp", "server", "process", "user_id", "session_id", "rpc",
     "shard_id", "service_time", "api_operation", "caused_by_attack"),
    kinds={"timestamp": np.float64, "server": object, "process": np.int64,
           "user_id": np.int64, "session_id": np.int64, "rpc": "enum",
           "shard_id": np.int64, "service_time": np.float64,
           "api_operation": "enum", "caused_by_attack": np.bool_},
    codes={"rpc": RPC_CODE, "api_operation": OPERATION_CODE},
)

_SESSION_SPEC = _StreamSpec(
    SessionRecord,
    ("timestamp", "server", "process", "user_id", "session_id", "event",
     "caused_by_attack", "session_length", "storage_operations"),
    kinds={"timestamp": np.float64, "server": object, "process": np.int64,
           "user_id": np.int64, "session_id": np.int64, "event": "enum",
           "caused_by_attack": np.bool_, "session_length": np.float64,
           "storage_operations": np.int64},
    codes={"event": SESSION_EVENT_CODE, "api_operation": OPERATION_CODE},
)


class ColumnBlock:
    """One stream's events as per-field NumPy arrays (the shard IPC format).

    This is what a replay shard ships across the worker boundary instead of
    a list of per-event row tuples: ``cols`` maps every numeric/enum field
    to the exact array ``_Stream.column`` would return (enum fields as
    ``int16`` code arrays), and ``codes`` maps every object-dtype field
    (``server``, ``content_hash``, ``extension``) to the factorised
    ``(int32 codes, categories)`` pair ``_Stream.codes`` would return.
    Numeric arrays pickle as contiguous buffers — no per-event Python
    objects cross the process boundary — and the factorisation dedups the
    repeated strings (machine names, duplicated content hashes).
    """

    __slots__ = ("n", "cols", "codes")

    def __init__(self, n: int, cols: dict[str, np.ndarray],
                 codes: dict[str, tuple[np.ndarray, list]]):
        self.n = n
        self.cols = cols
        self.codes = codes

    @classmethod
    def from_stream(cls, stream: "_Stream") -> "ColumnBlock":
        """Snapshot a stream's fields as columns (built in the shard worker)."""
        spec = stream.spec
        cols: dict[str, np.ndarray] = {}
        codes: dict[str, tuple[np.ndarray, list]] = {}
        for name in spec.fields:
            if spec.kinds[name] is object:
                codes[name] = stream.codes(name)
            else:
                cols[name] = stream.column(name)
        return cls(len(stream), cols, codes)

    @property
    def nbytes(self) -> int:
        """Bytes held by the NumPy arrays (the IPC payload size)."""
        total = sum(arr.nbytes for arr in self.cols.values())
        total += sum(pair[0].nbytes for pair in self.codes.values())
        return total

    def to_rows(self, spec: _StreamSpec) -> list[tuple]:
        """Decode the block back into row tuples (mixed-block fallback)."""
        return _decode_columns(spec, self.cols, self.codes, self.n)


def _decode_columns(spec: _StreamSpec, cols: dict[str, np.ndarray],
                    factorised: dict[str, tuple[np.ndarray, list]],
                    n: int) -> list[tuple]:
    """Row tuples (exact historical values) from per-field column arrays."""
    if n == 0:
        return []
    columns = []
    for name in spec.fields:
        kind = spec.kinds[name]
        if kind is object:
            codes_arr, categories = factorised[name]
            columns.append([categories[c] for c in codes_arr.tolist()])
        elif kind == "enum":
            decode = spec.decode[name]
            columns.append([decode[c] if c >= 0 else None
                            for c in cols[name].tolist()])
        else:
            columns.append(cols[name].tolist())
    return list(zip(*columns))


def _merge_factorised(pairs: list[tuple[np.ndarray, list]]) -> tuple[np.ndarray, list]:
    """Concatenate factorised ``(codes, categories)`` pairs in block order.

    Categories keep first-occurrence order across blocks; per-block codes are
    remapped through a small translation array (vectorised ``take``).
    """
    categories: list = []
    index: dict = {}
    remapped: list[np.ndarray] = []
    for codes_arr, cats in pairs:
        mapping = np.empty(len(cats), dtype=np.int32)
        for i, value in enumerate(cats):
            code = index.get(value)
            if code is None:
                code = index[value] = len(categories)
                categories.append(value)
            mapping[i] = code
        remapped.append(mapping[codes_arr] if len(cats)
                        else codes_arr.astype(np.int32))
    return np.concatenate(remapped), categories


class _Stream:
    """One record stream: canonical data + lazy columns + lazy record views.

    A stream is either a *base* (owns its canonical list, which holds raw
    field tuples until someone asks for record objects) or a *view* (an index
    array into a base stream, produced by the vectorised filters).

    Invariant that keeps views cheap and safe: a base's canonical list is
    never reordered in place — sorting installs a freshly built list and
    bumps ``order_version``.  Appends are allowed (they never disturb
    existing indices), so a view only needs to re-derive itself from its
    captured snapshot when the base was re-sorted after the view was taken.
    """

    __slots__ = ("spec", "_data", "_is_rows", "_cols", "order_version",
                 "_sorted", "_last_ts", "_row_source", "_transposed",
                 "_records_cache", "_pending",
                 "_base", "_snapshot", "_snapshot_is_rows", "_indices",
                 "_base_order_version", "_view_records")

    def __init__(self, spec: _StreamSpec, records: list | None = None):
        self.spec = spec
        self._data: list = records if records is not None else []
        self._is_rows = False
        self._cols: dict[str, np.ndarray] = {}
        self.order_version = 0
        self._sorted: bool | None = None if self._data else True
        self._last_ts = self._data[-1].timestamp if self._data else float("-inf")
        # Row tuples kept aside for records-mode streams converted from rows:
        # tuple indexing is ~2x faster than per-record getattr when building
        # columns.
        self._row_source: list | None = None
        # (length, zip(*rows) transpose) — all field tuples built in one
        # C-speed pass, shared by every column build of this stream state.
        self._transposed: tuple[int, tuple] | None = None
        # Rows-mode record view, extended incrementally as rows arrive.
        self._records_cache: list | None = None
        # Columns-canonical mode (the merged shard-IPC path): when non-zero,
        # the stream's canonical content is the fully seeded ``_cols`` cache
        # and ``_data`` is an empty rows list materialised lazily by
        # ``_hydrate`` — columnar readers never pay for row tuples.
        self._pending = 0
        self._base: _Stream | None = None
        self._snapshot: list | None = None
        self._snapshot_is_rows = False
        self._indices: np.ndarray | None = None
        self._base_order_version = 0
        self._view_records: list | None = None

    @classmethod
    def _view(cls, base: "_Stream", indices: np.ndarray) -> "_Stream":
        stream = cls.__new__(cls)
        stream.spec = base.spec
        stream._data = []
        stream._pending = 0
        stream._is_rows = False
        stream._cols = {}
        stream.order_version = 0
        stream._sorted = base._sorted  # subsequence of a sorted stream is sorted
        stream._last_ts = float("-inf")
        stream._row_source = None
        stream._transposed = None
        stream._records_cache = None
        stream._base = base
        stream._snapshot = base._data
        stream._snapshot_is_rows = base._is_rows
        stream._indices = indices
        stream._base_order_version = base.order_version
        stream._view_records = None
        return stream

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        if self._base is not None:
            return len(self._indices)
        if self._pending:
            return self._pending
        return len(self._data)

    # ------------------------------------------------------------- hydration
    def _hydrate(self) -> None:
        """Materialise the row tuples of a columns-canonical stream.

        Runs at most once, only when something actually needs rows or record
        objects (iteration, logfile export, mutation); the rows are appended
        into the *existing* ``_data`` list so views that snapshotted it stay
        coherent.  All columns were seeded at merge time, so this is a pure
        decode — no RNG, no re-sorting.
        """
        n = self._pending
        if not n:
            return
        spec = self.spec
        cols = {name: self.column(name) for name in spec.fields
                if spec.kinds[name] is not object}
        factorised = {name: self.codes(name) for name in spec.fields
                      if spec.kinds[name] is object}
        rows = _decode_columns(spec, cols, factorised, n)
        self._pending = 0
        self._data.extend(rows)
        self._is_rows = True

    # -------------------------------------------------------------- mutation
    def append_row(self, row: tuple) -> None:
        """Fast path: append one event as a raw field tuple."""
        if self._pending:
            self._hydrate()
        if self._is_rows:
            self._data.append(row)
        else:
            if self._base is not None:
                self._devirtualize()
            if self._data:
                self._data.append(self.spec.factory(*row))
            else:
                self._is_rows = True
                self._data.append(row)
        ts = row[0]
        if ts >= self._last_ts:
            self._last_ts = ts
        elif self._sorted:
            self._sorted = False

    def raw_appender(self):
        """Bound bulk appender for row tuples (the replay ingestion path).

        Returns a callable appending one row tuple per call — for a rows-mode
        base this is the underlying ``list.append`` itself, with no per-append
        bookkeeping: column caches are validated by length at read time and
        sortedness is recomputed lazily.  The binding becomes stale if the
        stream is sorted or converted to records-mode; re-request it after
        such operations (``TraceSink`` rebinds after ``finish()``).
        """
        if self._base is not None:
            self._devirtualize()
        if self._pending:
            self._hydrate()
        if not self._is_rows and self._data:
            return self.append_row  # records-mode: compatible slow path
        self._is_rows = True
        self._sorted = None  # bulk ingestion: recomputed lazily
        return self._data.append

    def append_record(self, record) -> None:
        """Append one record object (compatibility path).

        Rows-mode streams stay rows-mode: the record is decomposed into a
        row tuple (and remembered in the record cache, preserving identity
        for subsequent reads).
        """
        if self._base is not None:
            self._devirtualize()
        if self._pending:
            self._hydrate()
        if self._is_rows or not self._data:
            self._is_rows = True
            data = self._data
            cache = self._records_cache
            if cache is None and not data:
                cache = self._records_cache = []
            data.append(tuple(getattr(record, name)
                              for name in self.spec.fields))
            if cache is not None and len(cache) == len(data) - 1:
                cache.append(record)
        else:
            self._data.append(record)
        ts = record.timestamp
        if ts >= self._last_ts:
            self._last_ts = ts
        elif self._sorted:
            self._sorted = False

    def extend_records(self, other: "_Stream") -> None:
        """Merge another stream's records into this one (records shared)."""
        if self._base is not None:
            self._devirtualize()
        if self._pending:
            self._hydrate()
        if self._is_rows:
            self._to_records_mode()
        records = other.records()
        if not records:
            return
        if self._sorted is None:
            self.is_sorted()
        was_sorted = self._sorted
        # _last_ts may be stale after raw bulk ingestion; refresh it from the
        # actual tail (when sorted, the tail is the maximum).
        self._last_ts = self._data[-1].timestamp if self._data else float("-inf")
        self._data.extend(records)
        self._cols.clear()
        self._row_source = None
        if was_sorted:
            if not (records[0].timestamp >= self._last_ts and other.is_sorted()):
                self._sorted = False
        self._last_ts = max(self._last_ts, records[-1].timestamp)

    def _devirtualize(self) -> None:
        """Turn a view into a standalone base stream (rare, mutation only)."""
        records = self.records()
        self._data = records if records is not self._view_records else list(records)
        self._is_rows = False
        self._row_source = None
        self._records_cache = None
        self._base = None
        self._snapshot = None
        self._indices = None
        self._view_records = None
        self._last_ts = records[-1].timestamp if records else float("-inf")

    def _to_records_mode(self) -> None:
        """Switch a rows-mode base to records-mode (before record appends)."""
        if not self._is_rows:
            return
        rows = self._data
        self._data = list(self.records())
        self._is_rows = False
        self._records_cache = None
        self._row_source = rows if len(rows) == len(self._data) else None

    # --------------------------------------------------------------- records
    def records(self) -> list:
        """The records of this stream as a list (lazily built, then cached).

        For rows-mode streams the cache is extended incrementally, so reads
        interleaved with (raw) appends always see every event.
        """
        if self._base is None:
            if self._pending:
                self._hydrate()
            if not self._is_rows:
                return self._data
            data = self._data
            cache = self._records_cache
            factory = self.spec.factory
            if cache is None:
                cache = self._records_cache = [factory(*row) for row in data]
            elif len(cache) < len(data):
                cache.extend(factory(*row) for row in data[len(cache):])
            return cache
        if self._view_records is not None:
            return self._view_records
        if self._base.order_version == self._base_order_version:
            base_records = self._base.records()
            self._view_records = [base_records[i] for i in self._indices.tolist()]
        else:
            # The base was re-sorted after this view was taken; fall back to
            # the snapshot captured at filter time.
            factory = self.spec.factory
            snapshot = self._snapshot
            if self._snapshot_is_rows:
                self._view_records = [factory(*snapshot[i])
                                      for i in self._indices.tolist()]
            else:
                self._view_records = [snapshot[i] for i in self._indices.tolist()]
        return self._view_records

    def rows(self) -> list[tuple]:
        """The stream's events as raw field tuples (in stream order).

        Rows-mode base streams return their canonical list directly (do not
        mutate it); records-mode streams and views decompose their records
        into fresh tuples.  This is the export side of the columnar fast
        path — the sharded replay engine ships these lists between worker
        processes instead of record objects.
        """
        if self._base is None and self._is_rows:
            if self._pending:
                self._hydrate()
            return self._data
        fields = self.spec.fields
        return [tuple(getattr(r, name) for name in fields)
                for r in self.records()]

    @classmethod
    def _from_sorted_row_blocks(cls, spec: _StreamSpec,
                                blocks: list[list[tuple]]) -> "_Stream":
        """Merge row blocks, each already sorted by timestamp, into one stream.

        The merge is a concatenation in block order followed by a stable sort
        on the timestamp column: equal timestamps therefore resolve to the
        lower block index first, preserving each block's internal order — a
        deterministic k-way merge whose result does not depend on how the
        blocks were produced (sequentially or by parallel workers).
        """
        merged: list[tuple] = []
        for rows in blocks:
            merged.extend(rows)
        stream = cls(spec)
        if not merged:
            return stream
        ts = np.fromiter((row[0] for row in merged), dtype=np.float64,
                         count=len(merged))
        if ts.size > 1 and not bool(np.all(ts[1:] >= ts[:-1])):
            order = np.argsort(ts, kind="stable")
            merged = [merged[i] for i in order.tolist()]
            ts = ts[order]
        stream._data = merged
        stream._is_rows = True
        stream._sorted = True
        stream._last_ts = float(ts[-1])
        stream.seed_column("timestamp", ts)
        return stream

    @classmethod
    def _from_sorted_column_blocks(cls, spec: _StreamSpec,
                                   blocks: list[ColumnBlock]) -> "_Stream":
        """Merge per-shard :class:`ColumnBlock`\\ s into one columnar stream.

        The merge happens entirely on NumPy arrays: concatenate each field in
        block order, then apply one stable argsort of the timestamp column to
        every field (a no-op when the concatenation is already globally
        sorted).  Ties on timestamp keep lower-block-first, intra-block order
        — the same deterministic guarantee as the row merge.  Every field is
        seeded into the column cache (object fields as factorised codes), so
        post-merge columnar analyses never pay lazy column materialisation;
        row tuples / record objects are only decoded if something iterates
        the stream (see :meth:`_hydrate`).
        """
        blocks = [b for b in blocks if b.n]
        stream = cls(spec)
        if not blocks:
            return stream
        ts = np.concatenate([b.cols["timestamp"] for b in blocks])
        order = None
        if ts.size > 1 and not bool(np.all(ts[1:] >= ts[:-1])):
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
        cols: dict = {"timestamp": ts}
        for name in spec.fields:
            if name == "timestamp":
                continue
            if spec.kinds[name] is object:
                merged_codes, categories = _merge_factorised(
                    [b.codes[name] for b in blocks])
                if order is not None:
                    merged_codes = merged_codes[order]
                cols[f"{name}#codes"] = (merged_codes, categories)
            else:
                arr = np.concatenate([b.cols[name] for b in blocks])
                if order is not None:
                    arr = arr[order]
                cols[name] = arr
        stream._cols = cols
        stream._pending = int(ts.size)
        stream._is_rows = True
        stream._sorted = True
        stream._last_ts = float(ts[-1])
        return stream

    # --------------------------------------------------------------- columns
    def column(self, name: str) -> np.ndarray:
        """One field of the stream as a NumPy array (cached).

        Cache entries are validated by length: bulk row appends bypass cache
        invalidation, so an entry built before further ingestion is simply
        rebuilt on the next read.
        """
        cached = self._cols.get(name)
        if cached is not None and (self._base is not None
                                   or len(cached) == len(self)):
            return cached
        if self._base is None and self._pending:
            # Columns-canonical stream: object columns are stored factorised;
            # decode vectorised instead of hydrating the row tuples.
            pair = self._cols.get(f"{name}#codes")
            if pair is not None:
                codes_arr, categories = pair
                table = np.empty(len(categories), dtype=object)
                table[:] = categories
                arr = table[codes_arr]
                self._cols[name] = arr
                return arr
            self._hydrate()  # unseeded field (defensive): decode the rows
        if self._base is not None:
            if self._base.order_version == self._base_order_version:
                arr = self._base.column(name)[self._indices]
            else:
                arr = _extract_column(self.spec, self._snapshot,
                                      self._snapshot_is_rows, name,
                                      indices=self._indices)
        else:
            source, is_rows = self._field_source()
            if is_rows:
                arr = _column_from_values(self.spec, name,
                                          self._transpose(source)[self.spec.index[name]])
            else:
                arr = _extract_column(self.spec, source, False, name)
        self._cols[name] = arr
        return arr

    def _transpose(self, rows: list) -> tuple:
        """All field tuples of a rows list, built once with ``zip(*rows)``."""
        cached = self._transposed
        if cached is not None and cached[0] == len(rows):
            return cached[1]
        transposed = tuple(zip(*rows)) if rows else \
            tuple(() for _ in self.spec.fields)
        self._transposed = (len(rows), transposed)
        return transposed

    def seed_column(self, name: str, values: np.ndarray) -> None:
        """Pre-populate the column cache (used when slicing a parent)."""
        self._cols[name] = values

    def codes(self, name: str) -> tuple[np.ndarray, list]:
        """Factorised view of a (string) column: ``(codes, categories)``.

        Builds an int32 code array plus the list of distinct values in
        first-occurrence order, without materialising an object array —
        the mapping dict amortises because hot columns (``server``) draw
        from a handful of interned strings.
        """
        key = f"{name}#codes"
        cached = self._cols.get(key)
        if cached is not None and (self._base is not None
                                   or len(cached[0]) == len(self)):
            return cached  # type: ignore[return-value]
        if self._base is not None and self._base.order_version == self._base_order_version:
            base_codes, categories = self._base.codes(name)
            result = (base_codes[self._indices], categories)
        else:
            values = self._iter_field(name)
            if not isinstance(values, (tuple, list)):
                values = tuple(values)
            # C-speed factorisation, first-occurrence order preserved:
            # dict.fromkeys dedups in insertion order, the code lookup maps
            # at C level — bit-identical to the historical per-value Python
            # loop, an order of magnitude cheaper on long columns.
            mapping = {value: code
                       for code, value in enumerate(dict.fromkeys(values))}
            out = np.fromiter(map(mapping.__getitem__, values),
                              dtype=np.int32, count=len(values))
            result = (out, list(mapping))
        self._cols[key] = result  # type: ignore[assignment]
        return result

    def distinct(self, name: str) -> set:
        """Distinct values of a field without building a column array."""
        if self._base is None and self._pending:
            pair = self._cols.get(f"{name}#codes")
            if pair is not None:
                return set(pair[1])
        return set(self._iter_field(name))

    def _iter_field(self, name: str):
        """Iterate one field's raw values in stream order."""
        if self._base is not None:
            if self._base.order_version == self._base_order_version:
                source, is_rows = self._base._field_source()
            else:
                source, is_rows = self._snapshot, self._snapshot_is_rows
            if is_rows:
                k = self.spec.index[name]
                return (source[i][k] for i in self._indices.tolist())
            return (getattr(source[i], name) for i in self._indices.tolist())
        source, is_rows = self._field_source()
        if is_rows:
            return iter(self._transpose(source)[self.spec.index[name]])
        return (getattr(r, name) for r in source)

    def _field_source(self) -> tuple[list, bool]:
        """(sequence, is_rows) to read raw field values from."""
        if self._pending:
            self._hydrate()
        if self._is_rows:
            return self._data, True
        if self._row_source is not None and len(self._row_source) == len(self._data):
            return self._row_source, True
        return self._data, False

    # ------------------------------------------------------------------ sort
    def is_sorted(self) -> bool:
        """Whether the stream is sorted by timestamp (computed lazily)."""
        if self._sorted is None:
            if self._base is None and self._is_rows:
                # Rows-mode fast path: extract timestamps directly instead of
                # going through column(), which would transpose *every* field
                # of the stream just to read one — the replay sinks hit this
                # once per stream at finish() time.
                data = self._data
                ts = np.fromiter((row[0] for row in data), dtype=np.float64,
                                 count=len(data))
                self._cols.setdefault("timestamp", ts)
            else:
                ts = self.column("timestamp")
            self._sorted = bool(ts.size < 2 or np.all(ts[1:] >= ts[:-1]))
        return self._sorted

    def sort(self) -> None:
        """Stable-sort the stream by timestamp."""
        if self.is_sorted():
            return
        if self._base is not None:
            self._devirtualize()
            if self.is_sorted():
                return
        ts = self.column("timestamp")
        order = np.argsort(ts, kind="stable")
        order_list = order.tolist()
        n = len(order_list)
        data = self._data
        # Install a *new* list so views snapshotted earlier stay coherent.
        self._data = [data[i] for i in order_list]
        if self._row_source is not None and len(self._row_source) == n:
            rows = self._row_source
            self._row_source = [rows[i] for i in order_list]
        else:
            self._row_source = None
        if self._records_cache is not None and len(self._records_cache) == n:
            cache = self._records_cache
            self._records_cache = [cache[i] for i in order_list]
        else:
            self._records_cache = None
        self._transposed = None  # order changed; same length, stale content
        reordered = {}
        for name, value in self._cols.items():
            if isinstance(value, tuple):  # factorised codes: (codes, categories)
                if len(value[0]) == n:
                    reordered[name] = (value[0][order], value[1])
            elif len(value) == n:
                reordered[name] = value[order]
        self._cols = reordered
        self.order_version += 1
        self._sorted = True
        self._last_ts = float(ts[order[-1]]) if n else float("-inf")

    # ----------------------------------------------------------------- views
    def take(self, indices: np.ndarray) -> "_Stream":
        """A lazy sub-stream containing the given positions (in order)."""
        if self._base is None:
            return _Stream._view(self, indices)
        if self._base.order_version == self._base_order_version:
            return _Stream._view(self._base, self._indices[indices])
        self._devirtualize()
        return _Stream._view(self, indices)


def _column_from_values(spec: _StreamSpec, name: str, values: tuple) -> np.ndarray:
    """Build one column array from a pre-transposed field tuple."""
    kind = spec.kinds[name]
    n = len(values)
    if kind == "enum":
        codes = spec.codes[name]
        try:
            # C-level map over the code table — the shard column-packing hot
            # path.  Falls back to .get for rows carrying None enum fields
            # (hand-built blocks).
            return np.fromiter(map(codes.__getitem__, values),
                               dtype=np.int16, count=n)
        except KeyError:
            return np.fromiter((codes.get(v, -1) for v in values),
                               dtype=np.int16, count=n)
    if kind is object:
        arr = np.empty(n, dtype=object)
        arr[:] = values
        return arr
    return np.asarray(values, dtype=kind)


def _extract_column(spec: _StreamSpec, data: Sequence, is_rows: bool,
                    name: str, indices: np.ndarray | None = None) -> np.ndarray:
    kind = spec.kinds[name]
    if is_rows:
        k = spec.index[name]
        if indices is None:
            gen = (row[k] for row in data)
            n = len(data)
        else:
            gen = (data[i][k] for i in indices.tolist())
            n = len(indices)
    else:
        if indices is None:
            gen = (getattr(r, name) for r in data)
            n = len(data)
        else:
            gen = (getattr(data[i], name) for i in indices.tolist())
            n = len(indices)
    if kind == "enum":
        codes = spec.codes[name]
        return np.fromiter((codes.get(v, -1) for v in gen), dtype=np.int16, count=n)
    return np.fromiter(gen, dtype=kind, count=n)


class _RecordsView(Sequence):
    """List-like façade over a stream: materializes records on first access."""

    __slots__ = ("_stream",)

    def __init__(self, stream: _Stream):
        self._stream = stream

    def _records(self) -> list:
        return self._stream.records()

    def __len__(self) -> int:
        return len(self._stream)

    def __bool__(self) -> bool:
        return len(self._stream) > 0

    def __iter__(self):
        return iter(self._records())

    def __getitem__(self, item):
        return self._records()[item]

    def __contains__(self, item) -> bool:
        return item in self._records()

    def __eq__(self, other) -> bool:
        if isinstance(other, _RecordsView):
            return self._records() == other._records()
        return self._records() == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __add__(self, other):
        other_records = list(other) if not isinstance(other, list) else other
        return self._records() + other_records

    def __radd__(self, other):
        other_records = list(other) if not isinstance(other, list) else other
        return other_records + self._records()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._records())

    def index(self, value, *args) -> int:
        return self._records().index(value, *args)

    def count(self, value) -> int:
        return self._records().count(value)

    # Mutation helpers so legacy code treating the attribute as a plain list
    # keeps working; they go through the stream so caches stay coherent.
    def append(self, record) -> None:
        self._stream.append_record(record)

    def extend(self, records: Iterable) -> None:
        for record in records:
            self._stream.append_record(record)

    def sort(self, *, key=None, reverse: bool = False) -> None:
        stream = self._stream
        if stream._base is not None:
            stream._devirtualize()
        # Install a new list (never reorder in place) so earlier views stay
        # coherent; see the _Stream invariant.
        stream._data = sorted(stream.records(), key=key, reverse=reverse)
        stream._is_rows = False
        stream._row_source = None
        stream._transposed = None
        stream._records_cache = None
        stream._cols.clear()
        stream.order_version += 1
        stream._sorted = None


class TraceDataset:
    """Container of the three record streams of a U1 back-end trace.

    The storage model is columnar (see the module docstring): the
    :attr:`storage` / :attr:`rpc` / :attr:`sessions` attributes are lazy
    list-like record views, ``*_column(name)`` exposes cached NumPy arrays
    of individual fields (enum fields as integer codes, see
    :data:`OPERATION_CODE` and friends), ``*_codes(name)`` factorises
    string fields into ``(codes, categories)``, and ``append_*_row``
    ingests events as positional field tuples without building record
    objects.  All slicing/aggregation primitives below run vectorised on
    the columns and return exactly what the historical per-record
    implementations returned (shared record objects included).
    """

    __slots__ = ("_storage", "_rpc", "_sessions", "_legit_cache",
                 "_groupby_cache")

    def __init__(self, storage: list[StorageRecord] | None = None,
                 rpc: list[RpcRecord] | None = None,
                 sessions: list[SessionRecord] | None = None):
        self._storage = _Stream(_STORAGE_SPEC, list(storage) if storage else [])
        self._rpc = _Stream(_RPC_SPEC, list(rpc) if rpc else [])
        self._sessions = _Stream(_SESSION_SPEC, list(sessions) if sessions else [])
        self._legit_cache: tuple | None = None
        self._groupby_cache: dict = {}

    @classmethod
    def _from_streams(cls, storage: _Stream, rpc: _Stream,
                      sessions: _Stream) -> "TraceDataset":
        dataset = cls.__new__(cls)
        dataset._storage = storage
        dataset._rpc = rpc
        dataset._sessions = sessions
        dataset._legit_cache = None
        dataset._groupby_cache = {}
        return dataset

    @classmethod
    def from_sorted_blocks(cls, blocks) -> "TraceDataset":
        """Merge per-shard trace blocks into one sorted dataset.

        ``blocks`` is a sequence whose elements are either
        :class:`TraceDataset` instances or ``(storage, rpc, sessions)``
        triples whose entries are raw field-tuple lists or
        :class:`ColumnBlock`\\ s (the shard IPC format); every block's
        streams must already be sorted by timestamp (a shard sink's
        ``finish()`` guarantees that).  The merge is deterministic: ties on
        timestamp keep lower-block-first, intra-block order — so the result
        is a pure function of the block contents, independent of whether the
        blocks were produced sequentially or by parallel replay workers.

        When every entry of a stream is a :class:`ColumnBlock`, the merge
        runs column-wise and the resulting dataset has *every* field's
        column cache pre-seeded (see ``_Stream._from_sorted_column_blocks``);
        mixing columnar and row blocks falls back to the row merge.
        """
        storage_blocks: list = []
        rpc_blocks: list = []
        session_blocks: list = []
        for block in blocks:
            if isinstance(block, TraceDataset):
                storage_blocks.append(block._storage.rows())
                rpc_blocks.append(block._rpc.rows())
                session_blocks.append(block._sessions.rows())
            else:
                storage_rows, rpc_rows, session_rows = block
                storage_blocks.append(storage_rows)
                rpc_blocks.append(rpc_rows)
                session_blocks.append(session_rows)
        streams = []
        for spec, stream_blocks in ((_STORAGE_SPEC, storage_blocks),
                                    (_RPC_SPEC, rpc_blocks),
                                    (_SESSION_SPEC, session_blocks)):
            if stream_blocks and all(isinstance(b, ColumnBlock)
                                     for b in stream_blocks):
                streams.append(_Stream._from_sorted_column_blocks(
                    spec, stream_blocks))
            else:
                streams.append(_Stream._from_sorted_row_blocks(
                    spec, [b.to_rows(spec) if isinstance(b, ColumnBlock) else b
                           for b in stream_blocks]))
        return cls._from_streams(*streams)

    # ------------------------------------------------------------ stream API
    @property
    def storage(self) -> _RecordsView:
        """Storage records (list-like, records materialized lazily)."""
        return _RecordsView(self._storage)

    @property
    def rpc(self) -> _RecordsView:
        """RPC records (list-like, records materialized lazily)."""
        return _RecordsView(self._rpc)

    @property
    def sessions(self) -> _RecordsView:
        """Session records (list-like, records materialized lazily)."""
        return _RecordsView(self._sessions)

    def storage_column(self, name: str) -> np.ndarray:
        """Columnar view of one storage-record field (cached NumPy array)."""
        return self._storage.column(name)

    def rpc_column(self, name: str) -> np.ndarray:
        """Columnar view of one RPC-record field (cached NumPy array)."""
        return self._rpc.column(name)

    def session_column(self, name: str) -> np.ndarray:
        """Columnar view of one session-record field (cached NumPy array)."""
        return self._sessions.column(name)

    def storage_codes(self, name: str) -> tuple[np.ndarray, list]:
        """Factorised storage column: ``(int codes, categories)`` (cached)."""
        return self._storage.codes(name)

    def rpc_codes(self, name: str) -> tuple[np.ndarray, list]:
        """Factorised RPC column: ``(int codes, categories)`` (cached)."""
        return self._rpc.codes(name)

    def session_codes(self, name: str) -> tuple[np.ndarray, list]:
        """Factorised session column: ``(int codes, categories)`` (cached)."""
        return self._sessions.codes(name)

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        return len(self._storage) + len(self._rpc) + len(self._sessions)

    @property
    def is_empty(self) -> bool:
        """True when the dataset holds no records at all."""
        return len(self) == 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceDataset):
            return NotImplemented
        return (self._storage.records() == other._storage.records()
                and self._rpc.records() == other._rpc.records()
                and self._sessions.records() == other._sessions.records())

    def content_digest(self) -> str:
        """Stable hex digest of every record field across all three streams.

        Two datasets have equal digests exactly when they are record-for-
        record identical, so this is the bit-identity witness the chaos and
        resume checks compare — cheap enough to compute from the columnar
        form (object columns hash factorised, no row hydration).
        """
        import hashlib

        digest = hashlib.sha256()
        for label, stream in (("storage", self._storage),
                              ("rpc", self._rpc),
                              ("sessions", self._sessions)):
            digest.update(f"{label}:{len(stream)};".encode())
            for name in stream.spec.fields:
                digest.update(f"{name}:".encode())
                if stream.spec.kinds[name] is object:
                    codes, categories = stream.codes(name)
                    digest.update(np.ascontiguousarray(codes).tobytes())
                    digest.update(repr(categories).encode())
                else:
                    column = np.ascontiguousarray(stream.column(name))
                    digest.update(str(column.dtype).encode())
                    digest.update(column.tobytes())
        return digest.hexdigest()

    # -------------------------------------------------------------- mutation
    def add_storage(self, record: StorageRecord) -> None:
        """Append a storage record."""
        self._storage.append_record(record)
        self._legit_cache = None

    def add_rpc(self, record: RpcRecord) -> None:
        """Append an RPC record."""
        self._rpc.append_record(record)
        self._legit_cache = None

    def add_session(self, record: SessionRecord) -> None:
        """Append a session record."""
        self._sessions.append_record(record)
        self._legit_cache = None

    # The row fast paths do not invalidate the without_attack_traffic cache
    # explicitly: its key embeds the stream lengths, so any append is caught
    # at lookup time.

    def append_storage_row(self, *fields) -> None:
        """Fast path: append a storage event as positional field values.

        The positional order is exactly :class:`StorageRecord`'s field order;
        no record object is built until something iterates :attr:`storage`.
        """
        self._storage.append_row(fields)

    def append_rpc_row(self, *fields) -> None:
        """Fast path: append an RPC event (``RpcRecord`` field order)."""
        self._rpc.append_row(fields)

    def append_session_row(self, *fields) -> None:
        """Fast path: append a session event (``SessionRecord`` field order)."""
        self._sessions.append_row(fields)

    def extend(self, other: "TraceDataset") -> None:
        """Merge another dataset into this one (records are shared, not copied)."""
        self._storage.extend_records(other._storage)
        self._rpc.extend_records(other._rpc)
        self._sessions.extend_records(other._sessions)
        self._legit_cache = None

    def sort(self) -> None:
        """Sort every stream by timestamp in place (no-op when already sorted)."""
        self._storage.sort()
        self._rpc.sort()
        self._sessions.sort()

    # -------------------------------------------------------------- time span
    def time_span(self) -> tuple[float, float]:
        """Return ``(first_timestamp, last_timestamp)`` across all streams.

        Runs as a streaming min/max over the cached timestamp columns — no
        intermediate Python lists are materialized.
        """
        first = float("inf")
        last = float("-inf")
        for stream in (self._storage, self._rpc, self._sessions):
            if len(stream) == 0:
                continue
            ts = stream.column("timestamp")
            first = min(first, float(ts.min()))
            last = max(last, float(ts.max()))
        if first == float("inf"):
            raise ValueError("time span of an empty dataset is undefined")
        return first, last

    @property
    def duration(self) -> float:
        """Length of the trace in seconds."""
        start, end = self.time_span()
        return end - start

    # -------------------------------------------------------------- filtering
    def _filtered(self, mask_of: Callable[[_Stream], np.ndarray]) -> "TraceDataset":
        streams = []
        for stream in (self._storage, self._rpc, self._sessions):
            indices = np.flatnonzero(mask_of(stream))
            streams.append(stream.take(indices))
        return TraceDataset._from_streams(*streams)

    def filter_time(self, start: float, end: float) -> "TraceDataset":
        """Dataset restricted to records with ``start <= timestamp < end``."""
        def mask(stream: _Stream) -> np.ndarray:
            ts = stream.column("timestamp")
            return (ts >= start) & (ts < end)
        return self._filtered(mask)

    def filter_users(self, user_ids: Iterable[int]) -> "TraceDataset":
        """Dataset restricted to the given user ids."""
        wanted = np.fromiter(set(user_ids), dtype=np.int64)
        def mask(stream: _Stream) -> np.ndarray:
            return np.isin(stream.column("user_id"), wanted)
        return self._filtered(mask)

    def filter_storage(self, predicate: Callable[[StorageRecord], bool]) -> list[StorageRecord]:
        """Storage records satisfying ``predicate``."""
        return [r for r in self._storage.records() if predicate(r)]

    def without_attack_traffic(self) -> "TraceDataset":
        """Dataset with DDoS-attributed records removed.

        The paper removes "malfunctioning clients" artifacts before the
        workload analysis; analogously, analyses that characterise legitimate
        user behaviour can exclude attack traffic with this helper, while the
        anomaly-detection analysis (Fig. 5) keeps it.  The result is cached:
        analyses call this repeatedly and receive the same filtered dataset.
        """
        key = tuple((id(s), len(s), s.order_version)
                    for s in (self._storage, self._rpc, self._sessions))
        if self._legit_cache is not None and self._legit_cache[0] == key:
            return self._legit_cache[1]
        legit = self._filtered(lambda s: ~s.column("caused_by_attack"))
        self._legit_cache = (key, legit)
        return legit

    # ------------------------------------------------------------ aggregation
    def user_ids(self) -> set[int]:
        """Distinct user ids appearing anywhere in the trace."""
        ids: set[int] = set()
        for stream in (self._storage, self._rpc, self._sessions):
            if len(stream):
                ids.update(np.unique(stream.column("user_id")).tolist())
        return ids

    def session_ids(self) -> set[int]:
        """Distinct session ids appearing anywhere in the trace."""
        ids: set[int] = set()
        for stream in (self._storage, self._sessions):
            if len(stream):
                ids.update(np.unique(stream.column("session_id")).tolist())
        return ids

    def _storage_grouped(self, key_column: str,
                         keep: np.ndarray | None = None) -> dict[int, list[StorageRecord]]:
        """Group storage records by an integer column, vectorised.

        Groups appear in first-occurrence order and each group is sorted by
        ``(timestamp, insertion order)`` — exactly what the historical
        per-record implementation produced.  Results are memoized per stream
        state: several figure analyses group by the same key.
        """
        stream = self._storage
        # The keep mask participates in the key via a cheap fingerprint so
        # distinct masks over the same column never share a cache entry.
        if keep is None:
            keep_key = None
        else:
            keep_key = (int(keep.sum()),
                        hash(np.packbits(keep).tobytes()))
        cache_key = (key_column, keep_key, len(stream), stream.order_version)
        cached = self._groupby_cache.get(cache_key)
        if cached is not None:
            return cached
        grouped_result = self._storage_grouped_uncached(key_column, keep)
        self._groupby_cache[cache_key] = grouped_result
        return grouped_result

    def _storage_grouped_uncached(self, key_column: str,
                                  keep: np.ndarray | None = None) -> dict[int, list[StorageRecord]]:
        stream = self._storage
        n = len(stream)
        if n == 0:
            return {}
        keys = stream.column(key_column)
        ts = stream.column("timestamp")
        if keep is not None:
            positions = np.flatnonzero(keep)
            if positions.size == 0:
                return {}
            keys = keys[positions]
            ts = ts[positions]
        else:
            positions = np.arange(n)
        # Stable sort by key, then timestamp; ties keep insertion order.
        order = np.lexsort((ts, keys))
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        chunks = np.split(order, boundaries)
        records = stream.records()
        grouped: list[tuple[int, int, list[StorageRecord]]] = []
        for chunk in chunks:
            chunk_list = chunk.tolist()
            group_positions = positions[chunk]
            grouped.append((
                int(group_positions.min()),
                int(keys[chunk_list[0]]),
                [records[i] for i in group_positions.tolist()],
            ))
        grouped.sort()  # first-occurrence order
        return {key: group for _, key, group in grouped}

    def storage_by_user(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by user id, each list sorted by time."""
        return self._storage_grouped("user_id")

    def storage_by_node(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by node id (files/directories).

        Only records that reference a node are included (session-level
        operations such as ListVolumes carry ``node_id == 0`` and are
        skipped).
        """
        if len(self._storage) == 0:
            return {}
        return self._storage_grouped("node_id",
                                     keep=self._storage.column("node_id") != 0)

    def storage_by_session(self) -> dict[int, list[StorageRecord]]:
        """Storage records grouped by session id."""
        return self._storage_grouped("session_id")

    def iter_operations(self, *operations: ApiOperation) -> Iterator[StorageRecord]:
        """Iterate over storage records whose operation is one of ``operations``."""
        if len(self._storage) == 0:
            return
        codes = self._storage.column("operation")
        wanted = np.fromiter((OPERATION_CODE[op] for op in operations),
                             dtype=np.int16)
        records = self._storage.records()
        for i in np.flatnonzero(np.isin(codes, wanted)).tolist():
            yield records[i]

    def uploads(self) -> list[StorageRecord]:
        """All upload (PutContent) records."""
        return list(self.iter_operations(ApiOperation.UPLOAD))

    def downloads(self) -> list[StorageRecord]:
        """All download (GetContent) records."""
        return list(self.iter_operations(ApiOperation.DOWNLOAD))

    def upload_bytes(self) -> int:
        """Total uploaded bytes in the trace (columnar, no record objects)."""
        return self._transfer_bytes(_UPLOAD_CODE)

    def download_bytes(self) -> int:
        """Total downloaded bytes in the trace (columnar, no record objects)."""
        return self._transfer_bytes(_DOWNLOAD_CODE)

    def _transfer_bytes(self, code: int) -> int:
        if len(self._storage) == 0:
            return 0
        mask = self._storage.column("operation") == code
        return int(self._storage.column("size_bytes")[mask].sum())

    def completed_sessions(self) -> list[SessionRecord]:
        """DISCONNECT records, which carry session length and op counts."""
        if len(self._sessions) == 0:
            return []
        mask = self._sessions.column("event") == _DISCONNECT_CODE
        records = self._sessions.records()
        return [records[i] for i in np.flatnonzero(mask).tolist()]

    # ---------------------------------------------------------------- display
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceDataset(storage={len(self._storage)}, rpc={len(self._rpc)}, "
                f"sessions={len(self._sessions)})")
