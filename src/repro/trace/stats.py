"""Trace summary statistics (Table 3 of the paper).

Table 3 summarises the released trace: duration, number of back-end servers
traced, unique user ids, unique files, user sessions, transfer operations and
total upload/download traffic.  :func:`summarize` computes the same rows from
any :class:`~repro.trace.dataset.TraceDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.dataset import TraceDataset
from repro.util.units import DAY, format_bytes

__all__ = ["TraceSummary", "summarize"]


@dataclass(frozen=True)
class TraceSummary:
    """The rows of Table 3."""

    duration_days: float
    servers_traced: int
    unique_users: int
    unique_files: int
    user_sessions: int
    transfer_operations: int
    upload_bytes: int
    download_bytes: int

    def rows(self) -> list[tuple[str, str]]:
        """Human-readable rows in the same order as Table 3."""
        return [
            ("Trace duration", f"{self.duration_days:.1f} days"),
            ("Back-end servers traced", str(self.servers_traced)),
            ("Unique user IDs", f"{self.unique_users:,}"),
            ("Unique files", f"{self.unique_files:,}"),
            ("User sessions", f"{self.user_sessions:,}"),
            ("Transfer operations", f"{self.transfer_operations:,}"),
            ("Total upload traffic", format_bytes(self.upload_bytes)),
            ("Total download traffic", format_bytes(self.download_bytes)),
        ]

    def __str__(self) -> str:
        width = max(len(label) for label, _ in self.rows())
        return "\n".join(f"{label:<{width}}  {value}" for label, value in self.rows())


def summarize(dataset: TraceDataset) -> TraceSummary:
    """Compute the Table 3 summary of ``dataset``."""
    if dataset.is_empty:
        raise ValueError("cannot summarise an empty dataset")
    start, end = dataset.time_span()
    servers = {(r.server) for r in dataset.storage}
    servers.update(r.server for r in dataset.rpc)
    servers.update(r.server for r in dataset.sessions)
    unique_files = {r.node_id for r in dataset.storage
                    if r.node_id and r.node_kind.value == "file"}
    uploads = dataset.uploads()
    downloads = dataset.downloads()
    return TraceSummary(
        duration_days=(end - start) / DAY,
        servers_traced=len(servers),
        unique_users=len(dataset.user_ids()),
        unique_files=len(unique_files),
        user_sessions=len(dataset.session_ids()),
        transfer_operations=len(uploads) + len(downloads),
        upload_bytes=sum(r.size_bytes for r in uploads),
        download_bytes=sum(r.size_bytes for r in downloads),
    )
