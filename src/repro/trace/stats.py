"""Trace summary statistics (Table 3 of the paper).

Table 3 summarises the released trace: duration, number of back-end servers
traced, unique user ids, unique files, user sessions, transfer operations and
total upload/download traffic.  :func:`summarize` computes the same rows from
any :class:`~repro.trace.dataset.TraceDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import NODE_KIND_CODE, OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation, NodeKind
from repro.util.units import DAY, format_bytes

__all__ = ["TraceSummary", "summarize"]


@dataclass(frozen=True)
class TraceSummary:
    """The rows of Table 3."""

    duration_days: float
    servers_traced: int
    unique_users: int
    unique_files: int
    user_sessions: int
    transfer_operations: int
    upload_bytes: int
    download_bytes: int

    def rows(self) -> list[tuple[str, str]]:
        """Human-readable rows in the same order as Table 3."""
        return [
            ("Trace duration", f"{self.duration_days:.1f} days"),
            ("Back-end servers traced", str(self.servers_traced)),
            ("Unique user IDs", f"{self.unique_users:,}"),
            ("Unique files", f"{self.unique_files:,}"),
            ("User sessions", f"{self.user_sessions:,}"),
            ("Transfer operations", f"{self.transfer_operations:,}"),
            ("Total upload traffic", format_bytes(self.upload_bytes)),
            ("Total download traffic", format_bytes(self.download_bytes)),
        ]

    def __str__(self) -> str:
        width = max(len(label) for label, _ in self.rows())
        return "\n".join(f"{label:<{width}}  {value}" for label, value in self.rows())


def summarize(dataset: TraceDataset) -> TraceSummary:
    """Compute the Table 3 summary of ``dataset`` (columnar fast paths)."""
    if dataset.is_empty:
        raise ValueError("cannot summarise an empty dataset")
    start, end = dataset.time_span()
    servers: set[str] = set()
    for stream in (dataset._storage, dataset._rpc, dataset._sessions):
        if len(stream):
            servers.update(stream.distinct("server"))
    node_ids = dataset.storage_column("node_id")
    kinds = dataset.storage_column("node_kind")
    file_mask = (node_ids != 0) & (kinds == NODE_KIND_CODE[NodeKind.FILE])
    unique_files = np.unique(node_ids[file_mask])
    op_codes = dataset.storage_column("operation")
    n_uploads = int(np.sum(op_codes == OPERATION_CODE[ApiOperation.UPLOAD]))
    n_downloads = int(np.sum(op_codes == OPERATION_CODE[ApiOperation.DOWNLOAD]))
    return TraceSummary(
        duration_days=(end - start) / DAY,
        servers_traced=len(servers),
        unique_users=len(dataset.user_ids()),
        unique_files=int(unique_files.size),
        user_sessions=len(dataset.session_ids()),
        transfer_operations=n_uploads + n_downloads,
        upload_bytes=dataset.upload_bytes(),
        download_bytes=dataset.download_bytes(),
    )
