"""Trace anonymisation, mirroring Canonical's release procedure.

The released U1 dataset anonymises sensitive information (user ids, file
names, content hashes) while keeping the structural properties the analyses
rely on: identical users keep identical anonymised ids, identical contents
keep identical anonymised hashes (so deduplication analyses still work), and
file extensions are preserved (so the file-type taxonomy of Section 5.3 still
works).  :class:`Anonymizer` reproduces exactly that mapping.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.trace.dataset import TraceDataset
from repro.trace.records import RpcRecord, SessionRecord, StorageRecord

__all__ = ["Anonymizer"]


@dataclass
class Anonymizer:
    """Deterministic, keyed anonymiser for trace datasets.

    Parameters
    ----------
    secret:
        Keying material.  Two anonymisers with the same secret produce the
        same mapping; with different secrets the mappings are unlinkable.
    preserve_extensions:
        Keep file extensions in the clear (the released dataset does, since
        the file-type analyses need them).
    """

    secret: bytes = b"repro-u1-anonymizer"
    preserve_extensions: bool = True
    _user_map: dict[int, int] = field(default_factory=dict, repr=False)
    _session_map: dict[int, int] = field(default_factory=dict, repr=False)
    _node_map: dict[int, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ keys
    def _pseudonym(self, namespace: str, value: int | str, width: int = 12) -> int:
        digest = hmac.new(self.secret, f"{namespace}:{value}".encode(), hashlib.sha256)
        return int.from_bytes(digest.digest()[:width], "big")

    def anonymize_user_id(self, user_id: int) -> int:
        """Stable pseudonym for a user id."""
        if user_id not in self._user_map:
            self._user_map[user_id] = self._pseudonym("user", user_id, width=6)
        return self._user_map[user_id]

    def anonymize_session_id(self, session_id: int) -> int:
        """Stable pseudonym for a session id."""
        if session_id not in self._session_map:
            self._session_map[session_id] = self._pseudonym("session", session_id, width=6)
        return self._session_map[session_id]

    def anonymize_node_id(self, node_id: int) -> int:
        """Stable pseudonym for a node id (0 stays 0: "no node")."""
        if node_id == 0:
            return 0
        if node_id not in self._node_map:
            self._node_map[node_id] = self._pseudonym("node", node_id, width=6)
        return self._node_map[node_id]

    def anonymize_hash(self, content_hash: str) -> str:
        """Keyed re-hash of a content hash (empty stays empty)."""
        if not content_hash:
            return ""
        digest = hmac.new(self.secret, f"hash:{content_hash}".encode(), hashlib.sha256)
        return digest.hexdigest()[:40]

    # --------------------------------------------------------------- records
    def anonymize_storage(self, record: StorageRecord) -> StorageRecord:
        """Anonymised copy of a storage record."""
        return StorageRecord(
            timestamp=record.timestamp,
            server=record.server,
            process=record.process,
            user_id=self.anonymize_user_id(record.user_id),
            session_id=self.anonymize_session_id(record.session_id),
            operation=record.operation,
            node_id=self.anonymize_node_id(record.node_id),
            volume_id=record.volume_id,
            volume_type=record.volume_type,
            node_kind=record.node_kind,
            size_bytes=record.size_bytes,
            content_hash=self.anonymize_hash(record.content_hash),
            extension=record.extension if self.preserve_extensions else "",
            is_update=record.is_update,
            shard_id=record.shard_id,
            caused_by_attack=record.caused_by_attack,
            error_kind=record.error_kind,
            retries=record.retries,
        )

    def anonymize_rpc(self, record: RpcRecord) -> RpcRecord:
        """Anonymised copy of an RPC record."""
        return RpcRecord(
            timestamp=record.timestamp,
            server=record.server,
            process=record.process,
            user_id=self.anonymize_user_id(record.user_id),
            session_id=self.anonymize_session_id(record.session_id),
            rpc=record.rpc,
            shard_id=record.shard_id,
            service_time=record.service_time,
            api_operation=record.api_operation,
            caused_by_attack=record.caused_by_attack,
        )

    def anonymize_session(self, record: SessionRecord) -> SessionRecord:
        """Anonymised copy of a session record."""
        return SessionRecord(
            timestamp=record.timestamp,
            server=record.server,
            process=record.process,
            user_id=self.anonymize_user_id(record.user_id),
            session_id=self.anonymize_session_id(record.session_id),
            event=record.event,
            session_length=record.session_length,
            storage_operations=record.storage_operations,
            caused_by_attack=record.caused_by_attack,
        )

    def anonymize(self, dataset: TraceDataset) -> TraceDataset:
        """Anonymised copy of a whole dataset."""
        return TraceDataset(
            storage=[self.anonymize_storage(r) for r in dataset.storage],
            rpc=[self.anonymize_rpc(r) for r in dataset.rpc],
            sessions=[self.anonymize_session(r) for r in dataset.sessions],
        )
