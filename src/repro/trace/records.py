"""Record types of the U1 back-end trace.

The vocabulary follows Section 3.1 and Section 4 of the paper:

* API operations (Table 2): ``ListVolumes``, ``ListShares``, ``PutContent``
  (Upload), ``GetContent`` (Download), ``Make``, ``Unlink``, ``Move``,
  ``CreateUDF``, ``DeleteVolume``, ``GetDelta`` and ``Authenticate``, plus
  the session open/close and client-side maintenance operations that appear
  in the user-centric request graph (Fig. 8).
* RPC calls (Table 2 and Table 4 / Fig. 12): the ``dal.*`` data-access-layer
  calls issued by RPC workers against the sharded PostgreSQL metadata store
  and the ``auth.*`` call against the Canonical authentication service.
* Session events: connects, disconnects and authentication outcomes.

Every record carries the provenance the paper's logfiles carry: the physical
machine name, the server process number on that machine and a timestamp.
Timestamps are POSIX seconds; :data:`TRACE_EPOCH` is the start of the
measurement window (2014-01-11 00:00 UTC).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "TRACE_EPOCH",
    "DATA_MANAGEMENT_OPERATIONS",
    "ApiOperation",
    "VolumeType",
    "NodeKind",
    "RpcName",
    "RpcClass",
    "SessionEvent",
    "StorageRecord",
    "RpcRecord",
    "SessionRecord",
    "RPC_CLASS_BY_NAME",
    "rpc_class_of",
]

#: POSIX timestamp of 2014-01-11 00:00:00 UTC, the start of the 30-day trace.
TRACE_EPOCH: float = 1389398400.0


class ApiOperation(str, enum.Enum):
    """API operations issued by desktop clients (Table 2 / Fig. 7a / Fig. 8)."""

    UPLOAD = "Upload"                     # PutContent
    DOWNLOAD = "Download"                 # GetContent
    MAKE = "Make"                         # make file / make dir
    UNLINK = "Unlink"
    MOVE = "Move"
    CREATE_UDF = "CreateUDF"
    DELETE_VOLUME = "DeleteVolume"
    GET_DELTA = "GetDelta"
    LIST_VOLUMES = "ListVolumes"
    LIST_SHARES = "ListShares"
    AUTHENTICATE = "Authenticate"
    OPEN_SESSION = "OpenSession"
    CLOSE_SESSION = "CloseSession"
    QUERY_SET_CAPS = "QuerySetCaps"
    RESCAN_FROM_SCRATCH = "RescanFromScratch"

    @property
    def is_data_management(self) -> bool:
        """True for operations that manage data/metadata in user volumes.

        The paper calls a user *active* in a given hour when the user issues
        data-management operations (uploads, downloads, makes, deletions,
        moves, volume management), as opposed to session maintenance.
        """
        return self in _DATA_MANAGEMENT_OPERATIONS

    @property
    def is_transfer(self) -> bool:
        """True for operations that move file contents to/from Amazon S3."""
        return self in (ApiOperation.UPLOAD, ApiOperation.DOWNLOAD)

    @property
    def is_session_management(self) -> bool:
        """True for session start-up/tear-down and authentication."""
        return self in (ApiOperation.AUTHENTICATE, ApiOperation.OPEN_SESSION,
                        ApiOperation.CLOSE_SESSION)


_DATA_MANAGEMENT_OPERATIONS = frozenset({
    ApiOperation.UPLOAD,
    ApiOperation.DOWNLOAD,
    ApiOperation.MAKE,
    ApiOperation.UNLINK,
    ApiOperation.MOVE,
    ApiOperation.CREATE_UDF,
    ApiOperation.DELETE_VOLUME,
})

#: Public view of the data-management operation set, for hot paths that
#: prefer one frozenset lookup over the per-record enum property.
DATA_MANAGEMENT_OPERATIONS = _DATA_MANAGEMENT_OPERATIONS


class VolumeType(str, enum.Enum):
    """The three volume types of the U1 storage protocol (Section 3.1.1)."""

    ROOT = "root"
    UDF = "udf"
    SHARED = "shared"


class NodeKind(str, enum.Enum):
    """Nodes are either files or directories (Section 3.1.1)."""

    FILE = "file"
    DIRECTORY = "directory"


class RpcName(str, enum.Enum):
    """RPC calls against the metadata store / auth service.

    Grouped exactly as in Fig. 12: file-system management RPCs, upload
    management RPCs (Table 4, Appendix A) and other read-only RPCs.
    """

    # -- file-system management (Table 2, Fig. 12a) -------------------------
    LIST_VOLUMES = "dal.list_volumes"
    LIST_SHARES = "dal.list_shares"
    MAKE_DIR = "dal.make_dir"
    MAKE_FILE = "dal.make_file"
    UNLINK_NODE = "dal.unlink_node"
    MOVE = "dal.move"
    CREATE_UDF = "dal.create_udf"
    DELETE_VOLUME = "dal.delete_volume"
    GET_DELTA = "dal.get_delta"
    GET_VOLUME_ID = "dal.get_volume_id"
    # -- upload management (Table 4, Fig. 12b) -------------------------------
    MAKE_CONTENT = "dal.make_content"
    MAKE_UPLOADJOB = "dal.make_uploadjob"
    GET_UPLOADJOB = "dal.get_uploadjob"
    ADD_PART_TO_UPLOADJOB = "dal.add_part_to_uploadjob"
    SET_UPLOADJOB_MULTIPART_ID = "dal.set_uploadjob_multipart_id"
    TOUCH_UPLOADJOB = "dal.touch_uploadjob"
    DELETE_UPLOADJOB = "dal.delete_uploadjob"
    GET_REUSABLE_CONTENT = "dal.get_reusable_content"
    # -- other read-only RPCs (Fig. 12c) -------------------------------------
    GET_USER_ID_FROM_TOKEN = "auth.get_user_id_from_token"
    GET_FROM_SCRATCH = "dal.get_from_scratch"
    GET_NODE = "dal.get_node"
    GET_ROOT = "dal.get_root"
    GET_USER_DATA = "dal.get_user_data"


class RpcClass(str, enum.Enum):
    """RPC categories used in Fig. 13.

    ``READ`` RPCs exploit lockless parallel access to shard replicas and are
    the fastest; ``WRITE`` (write/update/delete) RPCs are slower; ``CASCADE``
    RPCs involve other operations (e.g. deleting a volume deletes all the
    nodes it contains) and are more than an order of magnitude slower.
    """

    READ = "read"
    WRITE = "write"
    CASCADE = "cascade"


RPC_CLASS_BY_NAME: dict[RpcName, RpcClass] = {
    RpcName.LIST_VOLUMES: RpcClass.READ,
    RpcName.LIST_SHARES: RpcClass.READ,
    RpcName.GET_DELTA: RpcClass.READ,
    RpcName.GET_VOLUME_ID: RpcClass.READ,
    RpcName.GET_UPLOADJOB: RpcClass.READ,
    RpcName.GET_REUSABLE_CONTENT: RpcClass.READ,
    RpcName.GET_USER_ID_FROM_TOKEN: RpcClass.READ,
    RpcName.GET_NODE: RpcClass.READ,
    RpcName.GET_ROOT: RpcClass.READ,
    RpcName.GET_USER_DATA: RpcClass.READ,
    RpcName.MAKE_DIR: RpcClass.WRITE,
    RpcName.MAKE_FILE: RpcClass.WRITE,
    RpcName.UNLINK_NODE: RpcClass.WRITE,
    RpcName.MOVE: RpcClass.WRITE,
    RpcName.CREATE_UDF: RpcClass.WRITE,
    RpcName.MAKE_CONTENT: RpcClass.WRITE,
    RpcName.MAKE_UPLOADJOB: RpcClass.WRITE,
    RpcName.ADD_PART_TO_UPLOADJOB: RpcClass.WRITE,
    RpcName.SET_UPLOADJOB_MULTIPART_ID: RpcClass.WRITE,
    RpcName.TOUCH_UPLOADJOB: RpcClass.WRITE,
    RpcName.DELETE_UPLOADJOB: RpcClass.WRITE,
    RpcName.DELETE_VOLUME: RpcClass.CASCADE,
    RpcName.GET_FROM_SCRATCH: RpcClass.CASCADE,
}


def rpc_class_of(name: RpcName) -> RpcClass:
    """Return the :class:`RpcClass` of an RPC name."""
    return RPC_CLASS_BY_NAME[name]


class SessionEvent(str, enum.Enum):
    """Session-management events captured in the trace (Section 7.3)."""

    CONNECT = "connect"
    DISCONNECT = "disconnect"
    AUTH_REQUEST = "auth_request"
    AUTH_OK = "auth_ok"
    AUTH_FAIL = "auth_fail"


@dataclass(slots=True)
class StorageRecord:
    """One completed API (storage) operation.

    Attributes mirror what the production logfiles expose after
    anonymisation: no file names or contents, only sizes, opaque content
    hashes and the file extension (kept by Canonical to enable the
    file-type analyses of Section 5.3).
    """

    timestamp: float
    server: str
    process: int
    user_id: int
    session_id: int
    operation: ApiOperation
    node_id: int = 0
    volume_id: int = 0
    volume_type: VolumeType = VolumeType.ROOT
    node_kind: NodeKind = NodeKind.FILE
    size_bytes: int = 0
    content_hash: str = ""
    extension: str = ""
    is_update: bool = False
    shard_id: int = -1
    caused_by_attack: bool = False
    #: Outcome of the request: "" for success, else the injected-fault kind
    #: ("service_unavailable", "shard_read_only", "storage_node_down"; see
    #: :mod:`repro.backend.errors`).
    error_kind: str = ""
    #: Retry attempts the API server's mitigation made before this outcome.
    retries: int = 0

    @property
    def failed(self) -> bool:
        """True when the request ended in a user-visible error."""
        return bool(self.error_kind)

    @property
    def is_upload(self) -> bool:
        """True for PutContent operations."""
        return self.operation is ApiOperation.UPLOAD

    @property
    def is_download(self) -> bool:
        """True for GetContent operations."""
        return self.operation is ApiOperation.DOWNLOAD


@dataclass(slots=True)
class RpcRecord:
    """One RPC call against the metadata store, with its service time."""

    timestamp: float
    server: str
    process: int
    user_id: int
    session_id: int
    rpc: RpcName
    shard_id: int
    service_time: float
    api_operation: ApiOperation | None = None
    caused_by_attack: bool = False

    @property
    def rpc_class(self) -> RpcClass:
        """The read/write/cascade class of this RPC (Fig. 13)."""
        return rpc_class_of(self.rpc)


@dataclass(slots=True)
class SessionRecord:
    """One session-management event (connect/disconnect/authentication)."""

    timestamp: float
    server: str
    process: int
    user_id: int
    session_id: int
    event: SessionEvent
    caused_by_attack: bool = False
    # Metadata filled on DISCONNECT events so that session-level analyses do
    # not need to re-join connect/disconnect pairs: length of the session in
    # seconds and the number of storage operations it performed.
    session_length: float = field(default=-1.0)
    storage_operations: int = field(default=0)
