"""End-to-end pipeline benchmark (``python -m repro bench``).

Times the three phases every reproduction run goes through — workload
generation, back-end replay and a representative analysis pass — and writes
the measurements to ``BENCH_pipeline.json`` so the performance trajectory is
tracked across PRs.

The analysis pass is the consolidated report (:func:`repro.core.report.
format_report`), i.e. every figure/table analysis of the paper — the same
work ``python -m repro report`` performs — so the benchmark captures how fast
the Fig. 2-17 analyses consume a trace, not just how fast one is generated.

The seed baseline below was measured on the seed revision (commit 42c7397,
per-event pure-Python engine) with this same harness at the default scale of
300 users / 3 days / seed 2014, best of 3 repeats.  Speedups reported in
``BENCH_pipeline.json`` are relative to it.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.report import format_report
from repro.trace.dataset import TraceDataset
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator

__all__ = ["BenchResult", "run_benchmark", "analysis_pass", "SEED_BASELINE"]


#: Phase timings (seconds) of the seed engine at 300 users / 3 days, measured
#: with this harness on the reference machine before the vectorized engine
#: landed, together with the workload realised by the seed engine's RNG draw
#: order (events generated; records replayed and analysed).  Keys match the
#: ``phases`` dict of :class:`BenchResult`.
SEED_BASELINE: dict[str, float] = {
    "generate": 0.1593,
    "replay": 0.2520,
    "analysis": 0.1224,
}

#: Workload units processed by each phase in the seed measurement.  The
#: vectorized engine draws the same distributions in a different order, so a
#: given seed realises a different (equally likely) workload size; speedups
#: are therefore normalised per workload unit (events for generation,
#: records for replay/analysis) to compare like with like.
SEED_BASELINE_UNITS: dict[str, int] = {
    "generate": 9264,
    "replay": 29525,
    "analysis": 29525,
}


@dataclass
class BenchResult:
    """Timings of one benchmark run."""

    users: int
    days: float
    seed: int
    repeats: int
    phases: dict[str, float]
    events_generated: int
    records_replayed: int
    analysis_records: int
    n_jobs: int = 1
    #: ``U1Cluster.last_replay_stats`` of the best replay round (shard
    #: layout, per-shard seconds, merge seconds).
    replay_stats: dict | None = None

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def to_json(self) -> dict:
        """JSON payload written to ``BENCH_pipeline.json``."""
        baseline_total = sum(SEED_BASELINE.values())
        payload = {
            "config": {"users": self.users, "days": self.days, "seed": self.seed,
                       "repeats": self.repeats, "jobs": self.n_jobs},
            "replay_shards": (self.replay_stats or {}).get("n_shards"),
            "replay_shard_seconds": (self.replay_stats or {}).get("shard_seconds"),
            "replay_merge_seconds": (self.replay_stats or {}).get("merge_seconds"),
            "phases_seconds": dict(self.phases),
            "total_seconds": self.total,
            "events_generated": self.events_generated,
            "events_per_second": self.events_generated / max(self.phases["generate"], 1e-12),
            "records_replayed": self.records_replayed,
            "records_per_second": self.records_replayed / max(self.phases["replay"], 1e-12),
            "seed_baseline_seconds": dict(SEED_BASELINE),
            "seed_baseline_units": dict(SEED_BASELINE_UNITS),
            "machine": platform.platform(),
        }
        if baseline_total > 0:
            units = {"generate": self.events_generated,
                     "replay": self.records_replayed,
                     "analysis": self.records_replayed}
            # Time this run would need for exactly the seed workload: scale
            # each phase by (seed units / this run's units).  Different RNG
            # draw orders realise different (equally likely) workload sizes
            # for the same seed, so raw wall-clock ratios would compare
            # different amounts of work.
            normalized = {
                name: seconds * SEED_BASELINE_UNITS[name] / max(units[name], 1)
                for name, seconds in self.phases.items()
            }
            payload["normalized_seconds"] = normalized
            payload["speedup_vs_seed"] = baseline_total / max(sum(normalized.values()), 1e-12)
            payload["raw_wallclock_speedup"] = baseline_total / max(self.total, 1e-12)
            payload["phase_speedups"] = {
                name: SEED_BASELINE[name] / max(normalized[name], 1e-12)
                for name in normalized
            }
        return payload


def analysis_pass(dataset: TraceDataset) -> int:
    """One representative analysis pass over a replayed trace.

    Runs the consolidated report — every figure/table analysis of the paper —
    and returns its length so the work cannot be optimised away.

    The pass runs with the cyclic garbage collector paused (the columnar
    analyses allocate no reference cycles), so the measurement captures the
    analyses themselves rather than whatever collection debt previous phases
    happened to defer — the same policy ``pyperf``/``timeit`` apply.
    """
    from repro.util.gctools import cyclic_gc_paused

    with cyclic_gc_paused():
        return len(format_report(dataset))


def run_benchmark(users: int = 300, days: float = 3.0, seed: int = 2014,
                  repeats: int = 5, n_jobs: int = 1) -> BenchResult:
    """Run the generate + replay + analysis pipeline, best-of-``repeats``.

    ``n_jobs`` is forwarded to the sharded replay; the produced dataset (and
    therefore the analysis work) is bit-identical for any value, so the
    timings stay comparable across job counts.
    """
    config = WorkloadConfig.scaled(users=users, days=days, seed=seed)
    best: dict[str, float] = {}
    events_generated = 0
    records_replayed = 0
    analysis_records = 0
    replay_stats: dict | None = None
    dataset = None
    for _ in range(max(1, repeats)):
        # Drop the previous round's dataset before timing: keeping ~40k dead
        # rows alive through the next replay only degrades heap locality.
        dataset = None  # noqa: F841 - frees the previous round eagerly
        t0 = time.perf_counter()
        generator = SyntheticTraceGenerator(config)
        scripts = generator.client_events()
        t1 = time.perf_counter()
        cluster = U1Cluster(ClusterConfig(seed=seed))
        t2 = time.perf_counter()
        dataset = cluster.replay(scripts, n_jobs=n_jobs)
        t3 = time.perf_counter()
        analysis_records = analysis_pass(dataset)
        t4 = time.perf_counter()
        events_generated = sum(len(s.events) for s in scripts)
        records_replayed = len(dataset)
        timings = {"generate": t1 - t0, "replay": t3 - t2, "analysis": t4 - t3}
        if timings["replay"] <= best.get("replay", float("inf")):
            replay_stats = cluster.last_replay_stats
        for name, seconds in timings.items():
            best[name] = min(best.get(name, float("inf")), seconds)
    return BenchResult(users=users, days=days, seed=seed, repeats=repeats,
                       phases=best, events_generated=events_generated,
                       records_replayed=records_replayed,
                       analysis_records=analysis_records,
                       n_jobs=n_jobs, replay_stats=replay_stats)


def write_report(result: BenchResult, out_path: Path) -> Path:
    """Write the benchmark JSON report."""
    out_path = Path(out_path)
    out_path.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    return out_path


def format_summary(result: BenchResult) -> str:
    """One-line human summary of a benchmark run.

    Everything a reader needs without opening the JSON: per-phase seconds,
    replay throughput, job count and the speedup versus the seed engine.
    """
    payload = result.to_json()
    phases = result.phases
    line = (f"bench[{result.users}u/{result.days:g}d seed {result.seed} "
            f"jobs {result.n_jobs} best-of-{result.repeats}]: "
            f"generate {phases['generate']:.3f}s + "
            f"replay {phases['replay']:.3f}s "
            f"({payload['records_per_second']:,.0f} rec/s) + "
            f"analysis {phases['analysis']:.3f}s = {result.total:.3f}s")
    if "speedup_vs_seed" in payload:
        line += f" | {payload['speedup_vs_seed']:.2f}x vs seed"
    return line
