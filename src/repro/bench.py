"""End-to-end pipeline benchmark (``python -m repro bench``).

Times the phases every reproduction run goes through and writes the
measurements to ``BENCH_pipeline.json`` so the performance trajectory is
tracked across PRs.  Since PR 3 the pipeline is *fused*: the ``generate``
phase is only the cheap global planning pass, and workload materialization
runs inside the replay shard workers (``U1Cluster.replay_plan``), in
parallel across shards — the ``replay`` phase therefore covers
materialize + replay + merge.  Per-shard generate/replay seconds, the
shard balance (``shard_imbalance = max/mean`` shard seconds) and the
columnar IPC payload size are recorded alongside.

The analysis pass is the consolidated report (:func:`repro.core.report.
format_report`), i.e. every figure/table analysis of the paper — the same
work ``python -m repro report`` performs — so the benchmark captures how fast
the Fig. 2-17 analyses consume a trace, not just how fast one is generated.

The seed baseline below was measured on the seed revision (commit 42c7397,
per-event pure-Python engine) with this same harness at the default scale of
300 users / 3 days / seed 2014, best of 3 repeats.  Speedups reported in
``BENCH_pipeline.json`` are relative to it.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from pathlib import Path

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.report import format_report
from repro.trace.dataset import TraceDataset
from repro.util import telemetry
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator

__all__ = ["BenchResult", "run_benchmark", "run_chaos_benchmark",
           "run_telemetry_benchmark", "run_profile", "analysis_pass",
           "SEED_BASELINE"]


#: Phase timings (seconds) of the seed engine at 300 users / 3 days, measured
#: with this harness on the reference machine before the vectorized engine
#: landed, together with the workload realised by the seed engine's RNG draw
#: order (events generated; records replayed and analysed).  Keys match the
#: ``phases`` dict of :class:`BenchResult`.
SEED_BASELINE: dict[str, float] = {
    "generate": 0.1593,
    "replay": 0.2520,
    "analysis": 0.1224,
}

#: Workload units processed by each phase in the seed measurement.  The
#: vectorized engine draws the same distributions in a different order, so a
#: given seed realises a different (equally likely) workload size; speedups
#: are therefore normalised per workload unit (events for generation,
#: records for replay/analysis) to compare like with like.  In the fused
#: pipeline the ``generate`` phase is the planning pass (its per-event cost
#: is what fusion removes from the critical path) and materialization time
#: is part of ``replay``.
SEED_BASELINE_UNITS: dict[str, int] = {
    "generate": 9264,
    "replay": 29525,
    "analysis": 29525,
}


@dataclass
class BenchResult:
    """Timings of one benchmark run."""

    users: int
    days: float
    seed: int
    repeats: int
    phases: dict[str, float]
    events_generated: int
    records_replayed: int
    analysis_records: int
    n_jobs: int = 1
    #: ``U1Cluster.last_replay_stats`` of the best replay round (shard
    #: layout, per-shard generate/replay seconds, imbalance, IPC bytes,
    #: merge seconds).
    replay_stats: dict | None = None
    #: Offline what-if sweep over the replayed trace (policy outcomes,
    #: tier/retrieval metrics, ``whatif_sweep_seconds``) — run once after
    #: the timed phases, so it never perturbs them.
    whatif: dict | None = None
    #: Fault-injection figures (ISSUE 6): zero-fault machinery overhead,
    #: one faulted replay, and the offline mitigation sweep over it —
    #: measured after the timed phases, best-of-``repeats`` like them.
    faults: dict | None = None
    #: Chaos-harness figures (ISSUE 7, ``--chaos``): supervised-pool
    #: overhead versus the unsupervised baseline, and the trace digest of a
    #: replay whose worker was SIGKILLed mid-run versus the undisturbed
    #: digest — measured after the timed phases.
    chaos: dict | None = None
    #: Telemetry overhead figures (ISSUE 9): telemetry-enabled versus
    #: -disabled replay seconds, interleaved best-of — CI gates the ratio
    #: at 1.03x.
    telemetry: dict | None = None
    #: Process peak RSS (MiB, ``ru_maxrss``) overall and at the end of each
    #: phase — the memory baseline ROADMAP item 1 needs (ISSUE 9
    #: satellite).  ``None`` when telemetry is disabled.
    peak_rss_mb: float | None = None
    phase_peak_rss_mb: dict | None = None
    #: Final snapshot of the default telemetry registry (counters, gauges,
    #: histograms, spans) taken at the end of the benchmark.
    metrics: dict | None = None

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def to_json(self) -> dict:
        """JSON payload written to ``BENCH_pipeline.json``."""
        baseline_total = sum(SEED_BASELINE.values())
        stats = self.replay_stats or {}
        generate_seconds = sum(stats.get("shard_generate_seconds") or [])
        payload = {
            "config": {"users": self.users, "days": self.days, "seed": self.seed,
                       "repeats": self.repeats, "jobs": self.n_jobs},
            "replay_shards": stats.get("n_shards"),
            "replay_shard_seconds": stats.get("shard_seconds"),
            "replay_shard_generate_seconds": stats.get("shard_generate_seconds"),
            "replay_merge_seconds": stats.get("merge_seconds"),
            # Which shard finished first/last under per-shard submission
            # (satellite of ISSUE 7): outcome order stays shard-id sorted,
            # only the dispatch is completion-ordered.
            "replay_completion_order": stats.get("completion_order"),
            "shard_imbalance": stats.get("shard_imbalance"),
            "ipc_block_bytes": stats.get("ipc_block_bytes"),
            # In-worker workload materialization cost per realised event
            # (sum of the per-shard generate seconds over every event the
            # replay processed) — the PR 5 vectorized-materializer metric.
            "materialize_us_per_event": (generate_seconds * 1e6
                                         / max(self.events_generated, 1)),
            # Block-dispatch cost per replayed event (sum of the per-shard
            # dispatch-loop seconds — timeline walk plus request handling,
            # excluding block build and record packing) and the total
            # struct-of-arrays event payload the shards dispatched from —
            # the ISSUE 10 columnar-replay metrics.
            "dispatch_us_per_event": (
                sum(stats.get("shard_dispatch_seconds") or []) * 1e6
                / max(self.events_generated, 1)),
            "event_block_bytes": stats.get("event_block_bytes"),
            "phases_seconds": dict(self.phases),
            "total_seconds": self.total,
            "events_generated": self.events_generated,
            # NOTE: the pre-PR-3 reports carried ``events_per_second`` =
            # events / generate-phase seconds.  The fused pipeline
            # materializes events inside the replay phase, so that quantity
            # no longer exists; the new key name marks the discontinuity
            # instead of silently changing the denominator.
            "events_per_pipeline_second": self.events_generated
                                          / max(self.phases["generate"]
                                                + self.phases["replay"], 1e-12),
            "records_replayed": self.records_replayed,
            "records_per_second": self.records_replayed / max(self.phases["replay"], 1e-12),
            "seed_baseline_seconds": dict(SEED_BASELINE),
            "seed_baseline_units": dict(SEED_BASELINE_UNITS),
            "machine": platform.platform(),
        }
        if self.whatif is not None:
            payload["whatif"] = self.whatif
        if self.faults is not None:
            payload["faults"] = self.faults
            # The two headline keys the CI smoke asserts on, hoisted to the
            # top level: replaying with the (empty) fault machinery engaged
            # must stay within a few percent of a plain replay, and one
            # offline policy evaluation must stay far below one replay.
            payload["fault_replay_overhead"] = \
                self.faults["fault_replay_overhead"]
            payload["faultsweep_per_policy_seconds"] = \
                self.faults["faultsweep_per_policy_seconds"]
        if self.chaos is not None:
            payload["chaos"] = self.chaos
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
            # Hoisted for the CI gate: enabled/disabled replay ratio.
            payload["telemetry_overhead"] = \
                self.telemetry["telemetry_overhead"]
        if self.peak_rss_mb is not None:
            payload["peak_rss_mb"] = self.peak_rss_mb
        if self.phase_peak_rss_mb:
            payload["phase_peak_rss_mb"] = dict(self.phase_peak_rss_mb)
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if baseline_total > 0:
            units = {"generate": self.events_generated,
                     "replay": self.records_replayed,
                     "analysis": self.records_replayed}
            # Time this run would need for exactly the seed workload: scale
            # each phase by (seed units / this run's units).  Different RNG
            # draw orders realise different (equally likely) workload sizes
            # for the same seed, so raw wall-clock ratios would compare
            # different amounts of work.
            normalized = {
                name: seconds * SEED_BASELINE_UNITS[name] / max(units[name], 1)
                for name, seconds in self.phases.items()
            }
            payload["normalized_seconds"] = normalized
            payload["speedup_vs_seed"] = baseline_total / max(sum(normalized.values()), 1e-12)
            payload["raw_wallclock_speedup"] = baseline_total / max(self.total, 1e-12)
            payload["phase_speedups"] = {
                name: SEED_BASELINE[name] / max(normalized[name], 1e-12)
                for name in normalized
            }
        return payload


def analysis_pass(dataset: TraceDataset) -> int:
    """One representative analysis pass over a replayed trace.

    Runs the consolidated report — every figure/table analysis of the paper —
    and returns its length so the work cannot be optimised away.

    The pass runs with the cyclic garbage collector paused (the columnar
    analyses allocate no reference cycles), so the measurement captures the
    analyses themselves rather than whatever collection debt previous phases
    happened to defer — the same policy ``pyperf``/``timeit`` apply.
    """
    from repro.util.gctools import cyclic_gc_paused

    with cyclic_gc_paused():
        return len(format_report(dataset))


def run_benchmark(users: int = 300, days: float = 3.0, seed: int = 2014,
                  repeats: int = 5, n_jobs: int = 1,
                  chaos: bool = False, chaos_dir=None) -> BenchResult:
    """Run the fused plan + (materialize+replay) + analysis pipeline.

    Best-of-``repeats`` per phase.  ``n_jobs`` is forwarded to the sharded
    replay; the produced dataset (and therefore the analysis work) is
    bit-identical for any value, so the timings stay comparable across job
    counts.  ``chaos`` additionally runs the crash-tolerance harness
    (:func:`run_chaos_benchmark`) after the timed phases; ``chaos_dir``
    gives the chaos replay a checkpoint directory so its ``events.jsonl``
    survives for inspection (``repro events``).  The telemetry on/off
    overhead (:func:`run_telemetry_benchmark`) is always measured.
    """
    config = WorkloadConfig.scaled(users=users, days=days, seed=seed)
    best: dict[str, float] = {}
    events_generated = 0
    records_replayed = 0
    analysis_records = 0
    replay_stats: dict | None = None
    dataset = None
    for _ in range(max(1, repeats)):
        # Drop the previous round's dataset before timing: keeping ~40k dead
        # rows alive through the next replay only degrades heap locality.
        dataset = None  # noqa: F841 - frees the previous round eagerly
        t0 = time.perf_counter()
        with telemetry.span("bench.generate"):
            generator = SyntheticTraceGenerator(config)
            plan = generator.plan()
        t1 = time.perf_counter()
        cluster = U1Cluster(ClusterConfig(seed=seed))
        t2 = time.perf_counter()
        with telemetry.span("bench.replay"):
            dataset = cluster.replay_plan(plan, n_jobs=n_jobs)
        t3 = time.perf_counter()
        with telemetry.span("bench.analysis"):
            analysis_records = analysis_pass(dataset)
        t4 = time.perf_counter()
        events_generated = cluster.last_replay_stats["events_replayed"]
        records_replayed = len(dataset)
        timings = {"generate": t1 - t0, "replay": t3 - t2, "analysis": t4 - t3}
        if timings["replay"] <= best.get("replay", float("inf")):
            replay_stats = cluster.last_replay_stats
        for name, seconds in timings.items():
            best[name] = min(best.get(name, float("inf")), seconds)
    # The offline what-if sweep over the last replayed trace: records the
    # tier/retrieval metrics (cold_bytes, hot_hit_rate, sweep seconds) the
    # CI smoke asserts on.  Runs after the timed phases on purpose, and
    # best-of-``repeats`` like the phases — the CI bound compares it
    # against the best-of replay time, so a single noisy measurement must
    # not carry the assertion.
    from repro.whatif.sweep import run_sweep

    sweep = None
    for _ in range(max(1, repeats)):
        # The dataset goes in un-decoded, so the recorded sweep seconds
        # honestly include the one-off column decode.
        candidate = run_sweep(dataset,
                              cost_model=cluster.config.cost_model,
                              chunk_bytes=cluster.config.multipart_chunk_bytes,
                              end_time=cluster.last_replay_stats["timeline_end"])
        if sweep is None or candidate.seconds < sweep.seconds:
            sweep = candidate

    faults = _run_fault_benchmark(config, seed=seed, days=days,
                                  repeats=repeats, n_jobs=n_jobs,
                                  plain_replay_seconds=best["replay"])
    telemetry_payload = run_telemetry_benchmark(config, seed=seed,
                                                repeats=repeats,
                                                n_jobs=n_jobs)
    chaos_payload = None
    if chaos:
        chaos_payload = run_chaos_benchmark(
            config, seed=seed, repeats=repeats, n_jobs=n_jobs,
            undisturbed_digest=dataset.content_digest(),
            chaos_dir=chaos_dir)

    # Peak-RSS baseline (satellite of ISSUE 9): per-phase highs from the
    # span layer (ru_maxrss is monotone, so a phase's figure is the process
    # high-water as of its last exit) and the overall maximum.
    registry = telemetry.get_registry()
    phase_peaks: dict[str, float] = {}
    for record in registry.spans:
        name = record.get("name", "")
        peak = record.get("peak_rss_mb")
        if name.startswith("bench.") and peak is not None:
            short = name[len("bench."):]
            phase_peaks[short] = max(phase_peaks.get(short, 0.0), peak)
    overall_peak = max(phase_peaks.values(), default=None) \
        if phase_peaks else None

    return BenchResult(users=users, days=days, seed=seed, repeats=repeats,
                       phases=best, events_generated=events_generated,
                       records_replayed=records_replayed,
                       analysis_records=analysis_records,
                       n_jobs=n_jobs, replay_stats=replay_stats,
                       whatif=sweep.to_json(), faults=faults,
                       chaos=chaos_payload, telemetry=telemetry_payload,
                       peak_rss_mb=overall_peak,
                       phase_peak_rss_mb=phase_peaks or None,
                       metrics=registry.snapshot()
                       if registry.enabled else None)


def _run_fault_benchmark(config, seed: int, days: float, repeats: int,
                         n_jobs: int, plain_replay_seconds: float) -> dict:
    """The three fault-injection measurements, best-of-``repeats`` each.

    (a) Replay with an *empty* fault plan attached: the injector is
    constructed and every request pays the envelope gate, but no window is
    ever active — divided by the best plain replay, this is the zero-fault
    overhead of the machinery (CI bounds it at 5%).  (b) One faulted
    replay with the default fault plan.  (c) The offline mitigation sweep
    over the faulted trace, whose per-policy cost must stay far below one
    replay.
    """
    from repro.faults.spec import FaultPlan, default_fault_plan
    from repro.faults.sweep import run_fault_sweep
    from repro.util.units import DAY

    empty_seconds = float("inf")
    for _ in range(max(1, repeats)):
        plan = SyntheticTraceGenerator(config).plan()
        cluster = U1Cluster(ClusterConfig(seed=seed, faults=FaultPlan()))
        t0 = time.perf_counter()
        cluster.replay_plan(plan, n_jobs=n_jobs)
        empty_seconds = min(empty_seconds, time.perf_counter() - t0)

    fault_plan = default_fault_plan(config.start_time, days * DAY, seed=seed)
    faulted_seconds = float("inf")
    faulted_cluster = None
    faulted_dataset = None
    for _ in range(max(1, repeats)):
        plan = SyntheticTraceGenerator(config).plan()
        cluster = U1Cluster(ClusterConfig(seed=seed, faults=fault_plan))
        t0 = time.perf_counter()
        dataset = cluster.replay_plan(plan, n_jobs=n_jobs)
        seconds = time.perf_counter() - t0
        if seconds < faulted_seconds:
            faulted_seconds = seconds
            faulted_cluster = cluster
            faulted_dataset = dataset

    sweep = None
    for _ in range(max(1, repeats)):
        candidate = run_fault_sweep(faulted_dataset,
                                    faulted_cluster.fault_schedule,
                                    config=faulted_cluster.config)
        if sweep is None or candidate.seconds < sweep.seconds:
            sweep = candidate

    payload = sweep.to_json()
    payload["empty_fault_replay_seconds"] = empty_seconds
    payload["fault_replay_seconds"] = faulted_seconds
    payload["fault_replay_overhead"] = \
        empty_seconds / max(plain_replay_seconds, 1e-12)
    payload["fault_counters"] = \
        faulted_cluster.last_replay_stats["fault_counters"]
    return payload


def run_telemetry_benchmark(config, seed: int, repeats: int,
                            n_jobs: int) -> dict:
    """Telemetry-enabled versus -disabled replay cost, interleaved.

    The same workload plan replays ``repeats`` times with the default
    registry enabled and disabled in alternation (both legs see the same
    cache/allocator state), best-of each; the ratio is the near-zero-
    overhead guarantee CI gates at 1.03x.  The registry's enabled flag is
    restored afterwards, whatever it was.
    """
    enabled_seconds = float("inf")
    disabled_seconds = float("inf")
    previous = telemetry.enabled()
    try:
        for _ in range(max(1, repeats)):
            for flag in (True, False):
                plan = SyntheticTraceGenerator(config).plan()
                cluster = U1Cluster(ClusterConfig(seed=seed))
                telemetry.set_enabled(flag)
                t0 = time.perf_counter()
                cluster.replay_plan(plan, n_jobs=n_jobs)
                elapsed = time.perf_counter() - t0
                if flag:
                    enabled_seconds = min(enabled_seconds, elapsed)
                else:
                    disabled_seconds = min(disabled_seconds, elapsed)
    finally:
        telemetry.set_enabled(previous)
    return {
        "telemetry_on_seconds": enabled_seconds,
        "telemetry_off_seconds": disabled_seconds,
        "telemetry_overhead":
            enabled_seconds / max(disabled_seconds, 1e-12),
    }


def run_chaos_benchmark(config, seed: int, repeats: int, n_jobs: int,
                        undisturbed_digest: str, chaos_dir=None) -> dict:
    """The crash-tolerance measurements behind ``repro bench --chaos``.

    Two questions, answered against the same workload plan:

    1. *What does supervision cost when nothing goes wrong?*  Healthy
       supervised replays and unsupervised baselines (the historical bare
       pool dispatch, ``supervise=False``) are timed *interleaved*,
       best-of-``repeats`` each, so both see the same cache/allocator
       state — ``supervised_overhead`` is the ratio of the bests, which
       CI bounds at 1.05x.  (Reusing the timed phases' replay seconds
       instead would compare measurements taken minutes apart in a
       differently-warmed process and mostly measure drift.)
    2. *Does a killed worker change the trace?*  One replay runs with a
       chaos plan that SIGKILLs the shard-0 worker on its first attempt;
       the supervisor respawns it and the merged dataset's
       ``content_digest`` must equal the undisturbed run's
       (``digests_match``), with the kill visible in ``worker_kills``.
       The recovered trace additionally runs the full invariant
       validation (:func:`repro.trace.validate.validate_dataset`) —
       ``trace_violations`` must stay empty.
    """
    from repro.backend.supervisor import ChaosPlan
    from repro.trace.validate import validate_dataset

    supervised_seconds = float("inf")
    unsupervised_seconds = float("inf")
    for _ in range(max(1, repeats)):
        for supervise in (True, False):
            plan = SyntheticTraceGenerator(config).plan()
            cluster = U1Cluster(ClusterConfig(seed=seed))
            t0 = time.perf_counter()
            cluster.replay_plan(plan, n_jobs=n_jobs, supervise=supervise)
            elapsed = time.perf_counter() - t0
            if supervise:
                supervised_seconds = min(supervised_seconds, elapsed)
            else:
                unsupervised_seconds = min(unsupervised_seconds, elapsed)

    chaos_plan = ChaosPlan(kill_shards=(0,), kill_after=0.0, kill_attempts=1)
    plan = SyntheticTraceGenerator(config).plan()
    cluster = U1Cluster(ClusterConfig(seed=seed))
    t0 = time.perf_counter()
    # A checkpoint dir (``chaos_dir``) gives the chaos replay a run
    # directory, which is where its events.jsonl lands — the durable
    # record of the injected kill/retry sequence (``repro events`` reads
    # it back).
    chaos_dataset = cluster.replay_plan(plan, n_jobs=n_jobs, chaos=chaos_plan,
                                        checkpoint_dir=chaos_dir)
    chaos_seconds = time.perf_counter() - t0
    stats = cluster.last_replay_stats
    chaos_digest = chaos_dataset.content_digest()
    events_path = stats.get("events_path")
    event_counts: dict[str, int] = {}
    if events_path:
        for record in telemetry.read_events(events_path):
            name = str(record.get("event", "?"))
            event_counts[name] = event_counts.get(name, 0) + 1
    return {
        "events_path": events_path,
        "event_counts": event_counts,
        "jobs": stats["n_jobs"],
        "supervised_seconds": supervised_seconds,
        "unsupervised_seconds": unsupervised_seconds,
        "supervised_overhead":
            supervised_seconds / max(unsupervised_seconds, 1e-12),
        "chaos_replay_seconds": chaos_seconds,
        "undisturbed_digest": undisturbed_digest,
        "chaos_digest": chaos_digest,
        "digests_match": chaos_digest == undisturbed_digest,
        "worker_kills": len(stats["shard_failures"]),
        "shard_retries": stats["shard_retries"],
        "quarantined_shards": stats["quarantined_shards"],
        "chaos_completion_order": stats["completion_order"],
        "trace_violations": validate_dataset(chaos_dataset),
    }


def run_profile(users: int = 300, days: float = 3.0, seed: int = 2014,
                n_jobs: int = 1, out=None, top: int = 20) -> None:
    """Profile one pipeline run and print per-phase cProfile tables.

    Each phase (plan, materialize+replay, analysis) runs once under its own
    :class:`cProfile.Profile`; the top ``top`` functions by cumulative time
    are printed per phase.  Note that with ``n_jobs > 1`` the shard workers
    are separate processes the profiler cannot see — profile with the
    default ``--jobs 1`` to capture materialization and replay inline.
    """
    import cProfile
    import pstats
    import sys

    out = out or sys.stdout
    config = WorkloadConfig.scaled(users=users, days=days, seed=seed)
    profiles: list[tuple[str, cProfile.Profile]] = []

    profile = cProfile.Profile()
    profile.enable()
    generator = SyntheticTraceGenerator(config)
    plan = generator.plan()
    profile.disable()
    profiles.append(("plan", profile))

    cluster = U1Cluster(ClusterConfig(seed=seed))
    profile = cProfile.Profile()
    profile.enable()
    dataset = cluster.replay_plan(plan, n_jobs=n_jobs)
    profile.disable()
    profiles.append(("materialize+replay", profile))

    profile = cProfile.Profile()
    profile.enable()
    analysis_pass(dataset)
    profile.disable()
    profiles.append(("analysis", profile))

    for name, profile in profiles:
        print(f"--- {name}: top {top} by cumulative time ---", file=out)
        stats = pstats.Stats(profile, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
        if name != "materialize+replay":
            continue
        # The columnar replay kernels, broken out of the phase table: the
        # struct-of-arrays timeline build and the object-free dispatch loop
        # each get their own restricted rows (ISSUE 10 satellite).
        for kernel, pattern in (
                ("event-block build", r"_build_timeline|\brows\b|nbytes"),
                ("block dispatch",
                 r"\b_dispatch\b|handle_event|open_session|close_session")):
            print(f"--- {name} / {kernel} kernels ---", file=out)
            stats.sort_stats("cumulative").print_stats(pattern, top)
        replay_stats = cluster.last_replay_stats or {}
        build = sum(replay_stats.get("shard_block_build_seconds") or [])
        dispatch = sum(replay_stats.get("shard_dispatch_seconds") or [])
        pack = sum(replay_stats.get("shard_pack_seconds") or [])
        generate = sum(replay_stats.get("shard_generate_seconds") or [])
        print(f"--- {name} sub-phases (summed over shards) ---", file=out)
        print(f"    generate {generate:.3f}s | block build {build:.3f}s | "
              f"dispatch {dispatch:.3f}s | pack {pack:.3f}s | "
              f"event blocks {replay_stats.get('event_block_bytes', 0)} bytes",
              file=out)


def write_report(result: BenchResult, out_path: Path) -> Path:
    """Atomically write the benchmark JSON report (raises OSError)."""
    from repro.util.atomicio import atomic_write_json

    return atomic_write_json(Path(out_path), result.to_json())


def format_summary(result: BenchResult) -> str:
    """One-line human summary of a benchmark run.

    Everything a reader needs without opening the JSON: per-phase seconds,
    replay throughput, job count, shard balance and the speedup versus the
    seed engine.
    """
    payload = result.to_json()
    phases = result.phases
    line = (f"bench[{result.users}u/{result.days:g}d seed {result.seed} "
            f"jobs {result.n_jobs} best-of-{result.repeats}]: "
            f"plan {phases['generate']:.3f}s + "
            f"materialize+replay {phases['replay']:.3f}s "
            f"({payload['records_per_second']:,.0f} rec/s) + "
            f"analysis {phases['analysis']:.3f}s = {result.total:.3f}s")
    imbalance = payload.get("shard_imbalance")
    if imbalance:
        line += f" | imbalance {imbalance:.2f}"
    materialize = payload.get("materialize_us_per_event")
    if materialize:
        line += f" | materialize {materialize:.2f} us/ev"
    whatif = payload.get("whatif")
    if whatif:
        line += (f" | whatif {whatif['n_policies']} policies "
                 f"{whatif['whatif_sweep_seconds']:.3f}s")
    faults = payload.get("faults")
    if faults:
        line += (f" | faults overhead {faults['fault_replay_overhead']:.3f}x, "
                 f"sweep {faults['n_policies']} policies "
                 f"{faults['faultsweep_seconds']:.3f}s")
    chaos = payload.get("chaos")
    if chaos:
        line += (f" | chaos kills {chaos['worker_kills']}, digest "
                 f"{'ok' if chaos['digests_match'] else 'MISMATCH'}, "
                 f"supervision {chaos['supervised_overhead']:.3f}x")
    overhead = payload.get("telemetry_overhead")
    if overhead:
        line += f" | telemetry {overhead:.3f}x"
    peak = payload.get("peak_rss_mb")
    if peak:
        line += f" | peak rss {peak:.0f} MiB"
    if "speedup_vs_seed" in payload:
        line += f" | {payload['speedup_vs_seed']:.2f}x vs seed"
    return line
