"""File operation dependencies (Section 5.2, Fig. 3a/3b).

A file in U1 can be written (uploaded), read (downloaded) and eventually
deleted.  The paper studies the dependencies between consecutive operations
on the same file:

* after a **write**: WAW (write-after-write) is the most common dependency —
  users repeatedly update synchronised files (documents, code) — and 80 % of
  WAW gaps are shorter than one hour; RAW captures device synchronisation
  right after a write; DAW captures short-lived files.
* after a **read**: RAR dominates (popular files are read repeatedly, with a
  long tail of downloads per file that motivates caching); WAR is the least
  common (files that are read tend not to be updated again).
* around 9 % of all files are unused for more than a day before being
  deleted ("dying files"), motivating warm/cold storage tiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.stats import EmpiricalCDF
from repro.util.units import DAY

__all__ = [
    "Dependency",
    "DependencyAnalysis",
    "file_dependencies",
    "downloads_per_file",
    "dying_files",
]


class Dependency(str, enum.Enum):
    """The six inter-operation dependencies of Fig. 3."""

    WAW = "WAW"
    RAW = "RAW"
    DAW = "DAW"
    WAR = "WAR"
    RAR = "RAR"
    DAR = "DAR"


_OP_KIND = {
    ApiOperation.UPLOAD: "W",
    ApiOperation.DOWNLOAD: "R",
    ApiOperation.UNLINK: "D",
}

#: Small integer codes of the W/R/D kinds used by the vectorised fast paths.
_KIND_WRITE, _KIND_READ, _KIND_DELETE = 0, 1, 2
_KIND_OF_LETTER = {"W": _KIND_WRITE, "R": _KIND_READ, "D": _KIND_DELETE}


def _rwd_sorted(source: TraceDataset) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """W/R/D storage records with a node id, sorted by ``(node, timestamp)``.

    Returns ``(node_ids, timestamps, kind_codes)``; ties keep insertion
    order (stable lexsort), matching ``storage_by_node``'s ordering.
    """
    op_codes = source.storage_column("operation")
    node_ids = source.storage_column("node_id")
    kind_by_code = np.full(len(ApiOperation), -1, dtype=np.int8)
    for operation, letter in _OP_KIND.items():
        kind_by_code[OPERATION_CODE[operation]] = _KIND_OF_LETTER[letter]
    kinds = kind_by_code[op_codes]
    mask = (kinds >= 0) & (node_ids != 0)
    node_ids = node_ids[mask]
    timestamps = source.storage_column("timestamp")[mask]
    kinds = kinds[mask].astype(np.int64)
    order = np.lexsort((timestamps, node_ids))
    return node_ids[order], timestamps[order], kinds[order]


@dataclass(frozen=True)
class DependencyAnalysis:
    """Inter-operation times grouped by dependency type."""

    times: dict[Dependency, np.ndarray]

    def count(self, dependency: Dependency) -> int:
        """Number of observed pairs of the given dependency."""
        return int(self.times[dependency].size)

    def total_after_write(self) -> int:
        """Total number of X-after-Write pairs."""
        return sum(self.count(d) for d in (Dependency.WAW, Dependency.RAW, Dependency.DAW))

    def total_after_read(self) -> int:
        """Total number of X-after-Read pairs."""
        return sum(self.count(d) for d in (Dependency.WAR, Dependency.RAR, Dependency.DAR))

    def share_after_write(self, dependency: Dependency) -> float:
        """Share of a dependency among the X-after-Write pairs."""
        total = self.total_after_write()
        return self.count(dependency) / total if total else 0.0

    def share_after_read(self, dependency: Dependency) -> float:
        """Share of a dependency among the X-after-Read pairs."""
        total = self.total_after_read()
        return self.count(dependency) / total if total else 0.0

    def cdf(self, dependency: Dependency) -> EmpiricalCDF:
        """Empirical CDF of the inter-operation times of a dependency."""
        values = self.times[dependency]
        if values.size == 0:
            raise ValueError(f"no samples for dependency {dependency.value}")
        return EmpiricalCDF(values)

    def fraction_within(self, dependency: Dependency, seconds: float) -> float:
        """Fraction of gaps of ``dependency`` shorter than ``seconds``."""
        values = self.times[dependency]
        if values.size == 0:
            return 0.0
        return float(np.mean(values <= seconds))


def file_dependencies(dataset: TraceDataset,
                      include_attacks: bool = False) -> DependencyAnalysis:
    """Extract every consecutive-operation dependency per file (Fig. 3a/3b)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: keep W/R/D records with a node id, order them by
    # (node, timestamp) and classify each same-node consecutive pair.
    nodes, timestamps, kinds = _rwd_sorted(source)
    times: dict[Dependency, np.ndarray] = {}
    if nodes.size < 2:
        return DependencyAnalysis(times={d: np.empty(0) for d in Dependency})
    same_node = nodes[1:] == nodes[:-1]
    prev_kind = kinds[:-1]
    next_kind = kinds[1:]
    gaps = np.maximum(timestamps[1:] - timestamps[:-1], 0.0)
    valid = same_node & (prev_kind != _KIND_DELETE)
    pair_code = prev_kind[valid] * 3 + next_kind[valid]
    pair_gaps = gaps[valid]
    for dependency in Dependency:
        # Dependency "XAY" = next kind X after previous kind Y.
        code = _KIND_OF_LETTER[dependency.value[2]] * 3 \
            + _KIND_OF_LETTER[dependency.value[0]]
        times[dependency] = pair_gaps[pair_code == code]
    return DependencyAnalysis(times=times)


def downloads_per_file(dataset: TraceDataset,
                       include_attacks: bool = False) -> np.ndarray:
    """Number of downloads observed per file (inner plot of Fig. 3b).

    The distribution has a long tail: a small fraction of files is very
    popular, which motivates server-side caching.
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    mask = ((source.storage_column("operation")
             == OPERATION_CODE[ApiOperation.DOWNLOAD])
            & (source.storage_column("node_id") != 0))
    _, counts = np.unique(source.storage_column("node_id")[mask],
                          return_counts=True)
    return np.sort(counts).astype(float)


@dataclass(frozen=True)
class DyingFilesReport:
    """Files unused for a long period before their deletion (Section 5.2)."""

    dying_files: int
    deleted_files: int
    observed_files: int

    @property
    def share_of_all_files(self) -> float:
        """Dying files as a fraction of all observed files (paper: ~9.1 %)."""
        return self.dying_files / self.observed_files if self.observed_files else 0.0


def dying_files(dataset: TraceDataset, idle_threshold: float = DAY,
                include_attacks: bool = False) -> DyingFilesReport:
    """Count files that sat unused for ``idle_threshold`` before deletion."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    nodes, timestamps, kinds = _rwd_sorted(source)
    if nodes.size == 0:
        return DyingFilesReport(dying_files=0, deleted_files=0, observed_files=0)
    # Last relevant record of each node = position before a node change.
    last_of_node = np.empty(nodes.size, dtype=bool)
    last_of_node[:-1] = nodes[1:] != nodes[:-1]
    last_of_node[-1] = True
    observed = int(last_of_node.sum())
    deleted_mask = last_of_node & (kinds == _KIND_DELETE)
    deleted = int(deleted_mask.sum())
    # A "dying" file also has a previous record of the same node and sat
    # idle longer than the threshold before the final unlink.
    positions = np.flatnonzero(deleted_mask)
    has_prev = positions > 0
    positions = positions[has_prev]
    same_node_prev = nodes[positions - 1] == nodes[positions]
    idle = timestamps[positions] - timestamps[positions - 1]
    dying = int(np.sum(same_node_prev & (idle > idle_threshold)))
    return DyingFilesReport(dying_files=dying, deleted_files=deleted,
                            observed_files=observed)
