"""File operation dependencies (Section 5.2, Fig. 3a/3b).

A file in U1 can be written (uploaded), read (downloaded) and eventually
deleted.  The paper studies the dependencies between consecutive operations
on the same file:

* after a **write**: WAW (write-after-write) is the most common dependency —
  users repeatedly update synchronised files (documents, code) — and 80 % of
  WAW gaps are shorter than one hour; RAW captures device synchronisation
  right after a write; DAW captures short-lived files.
* after a **read**: RAR dominates (popular files are read repeatedly, with a
  long tail of downloads per file that motivates caching); WAR is the least
  common (files that are read tend not to be updated again).
* around 9 % of all files are unused for more than a day before being
  deleted ("dying files"), motivating warm/cold storage tiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import ApiOperation
from repro.util.stats import EmpiricalCDF
from repro.util.units import DAY

__all__ = [
    "Dependency",
    "DependencyAnalysis",
    "file_dependencies",
    "downloads_per_file",
    "dying_files",
]


class Dependency(str, enum.Enum):
    """The six inter-operation dependencies of Fig. 3."""

    WAW = "WAW"
    RAW = "RAW"
    DAW = "DAW"
    WAR = "WAR"
    RAR = "RAR"
    DAR = "DAR"


_OP_KIND = {
    ApiOperation.UPLOAD: "W",
    ApiOperation.DOWNLOAD: "R",
    ApiOperation.UNLINK: "D",
}


@dataclass(frozen=True)
class DependencyAnalysis:
    """Inter-operation times grouped by dependency type."""

    times: dict[Dependency, np.ndarray]

    def count(self, dependency: Dependency) -> int:
        """Number of observed pairs of the given dependency."""
        return int(self.times[dependency].size)

    def total_after_write(self) -> int:
        """Total number of X-after-Write pairs."""
        return sum(self.count(d) for d in (Dependency.WAW, Dependency.RAW, Dependency.DAW))

    def total_after_read(self) -> int:
        """Total number of X-after-Read pairs."""
        return sum(self.count(d) for d in (Dependency.WAR, Dependency.RAR, Dependency.DAR))

    def share_after_write(self, dependency: Dependency) -> float:
        """Share of a dependency among the X-after-Write pairs."""
        total = self.total_after_write()
        return self.count(dependency) / total if total else 0.0

    def share_after_read(self, dependency: Dependency) -> float:
        """Share of a dependency among the X-after-Read pairs."""
        total = self.total_after_read()
        return self.count(dependency) / total if total else 0.0

    def cdf(self, dependency: Dependency) -> EmpiricalCDF:
        """Empirical CDF of the inter-operation times of a dependency."""
        values = self.times[dependency]
        if values.size == 0:
            raise ValueError(f"no samples for dependency {dependency.value}")
        return EmpiricalCDF(values)

    def fraction_within(self, dependency: Dependency, seconds: float) -> float:
        """Fraction of gaps of ``dependency`` shorter than ``seconds``."""
        values = self.times[dependency]
        if values.size == 0:
            return 0.0
        return float(np.mean(values <= seconds))


def file_dependencies(dataset: TraceDataset,
                      include_attacks: bool = False) -> DependencyAnalysis:
    """Extract every consecutive-operation dependency per file (Fig. 3a/3b)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    times: dict[Dependency, list[float]] = {d: [] for d in Dependency}
    for records in source.storage_by_node().values():
        ops = [(r.timestamp, _OP_KIND.get(r.operation)) for r in records
               if r.operation in _OP_KIND]
        for (t_prev, kind_prev), (t_next, kind_next) in zip(ops, ops[1:]):
            if kind_prev is None or kind_next is None:
                continue
            if kind_prev == "D":
                # Nothing can follow a delete of the same node id.
                continue
            gap = max(t_next - t_prev, 0.0)
            name = f"{kind_next}A{kind_prev}"
            try:
                dependency = Dependency(name)
            except ValueError:
                continue
            times[dependency].append(gap)
    return DependencyAnalysis(times={d: np.asarray(v, dtype=float)
                                     for d, v in times.items()})


def downloads_per_file(dataset: TraceDataset,
                       include_attacks: bool = False) -> np.ndarray:
    """Number of downloads observed per file (inner plot of Fig. 3b).

    The distribution has a long tail: a small fraction of files is very
    popular, which motivates server-side caching.
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    counts: dict[int, int] = {}
    for record in source.downloads():
        if record.node_id:
            counts[record.node_id] = counts.get(record.node_id, 0) + 1
    return np.asarray(sorted(counts.values()), dtype=float)


@dataclass(frozen=True)
class DyingFilesReport:
    """Files unused for a long period before their deletion (Section 5.2)."""

    dying_files: int
    deleted_files: int
    observed_files: int

    @property
    def share_of_all_files(self) -> float:
        """Dying files as a fraction of all observed files (paper: ~9.1 %)."""
        return self.dying_files / self.observed_files if self.observed_files else 0.0


def dying_files(dataset: TraceDataset, idle_threshold: float = DAY,
                include_attacks: bool = False) -> DyingFilesReport:
    """Count files that sat unused for ``idle_threshold`` before deletion."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    dying = 0
    deleted = 0
    observed = 0
    for records in source.storage_by_node().values():
        relevant = [r for r in records if r.operation in _OP_KIND]
        if not relevant:
            continue
        observed += 1
        if relevant[-1].operation is not ApiOperation.UNLINK:
            continue
        deleted += 1
        if len(relevant) < 2:
            continue
        idle = relevant[-1].timestamp - relevant[-2].timestamp
        if idle > idle_threshold:
            dying += 1
    return DyingFilesReport(dying_files=dying, deleted_files=deleted,
                            observed_files=observed)
