"""File sizes per extension and file-type taxonomy (Section 5.3, Fig. 4b/4c).

* **Fig. 4b** — the overall file-size distribution (90 % of files below
  1 MB) and the per-extension size CDFs, which are very disparate:
  incompressible media/compressed files are much larger than code or
  documents.
* **Fig. 4c** — classifying the most popular extensions into 7 categories
  and plotting, for each category, its share of the number of files against
  its share of the consumed storage: Code holds the largest fraction of
  files but minimal storage, while Audio/Video dominates storage consumption
  despite being a small fraction of the files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.stats import EmpiricalCDF
from repro.util.units import MB
from repro.workload.filemodel import FILE_CATEGORIES, category_of_extension

__all__ = [
    "FileSizeAnalysis",
    "file_size_analysis",
    "CategoryShare",
    "category_shares",
]


@dataclass(frozen=True)
class FileSizeAnalysis:
    """Overall and per-extension file-size distributions (Fig. 4b)."""

    sizes_by_extension: dict[str, np.ndarray]
    all_sizes: np.ndarray

    @property
    def n_files(self) -> int:
        """Number of distinct uploaded files considered."""
        return int(self.all_sizes.size)

    def overall_cdf(self) -> EmpiricalCDF:
        """CDF of all file sizes."""
        if self.all_sizes.size == 0:
            raise ValueError("no files observed")
        return EmpiricalCDF(self.all_sizes)

    def extension_cdf(self, extension: str) -> EmpiricalCDF:
        """CDF of the sizes of one extension."""
        sizes = self.sizes_by_extension.get(extension)
        if sizes is None or sizes.size == 0:
            raise ValueError(f"no files with extension {extension!r}")
        return EmpiricalCDF(sizes)

    def fraction_below(self, size_bytes: float) -> float:
        """Fraction of files smaller than ``size_bytes`` (paper: 90 % < 1 MB)."""
        if self.all_sizes.size == 0:
            return 0.0
        return float(np.mean(self.all_sizes < size_bytes))

    def median_size(self, extension: str | None = None) -> float:
        """Median size, overall or for one extension."""
        sizes = self.all_sizes if extension is None else self.sizes_by_extension.get(
            extension, np.empty(0))
        if sizes.size == 0:
            raise ValueError("no files observed")
        return float(np.median(sizes))

    def top_extensions(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most popular extensions with their file counts."""
        counts = [(ext, sizes.size) for ext, sizes in self.sizes_by_extension.items()]
        counts.sort(key=lambda item: item[1], reverse=True)
        return counts[:n]


def _distinct_file_arrays(dataset: TraceDataset, include_attacks: bool):
    """Last observed (sizes, extension codes, categories) per uploaded node.

    Columnar: selects upload records with a node id and keeps, per node, the
    last occurrence in stream order (reversed-unique trick).
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    mask = ((source.storage_column("operation")
             == OPERATION_CODE[ApiOperation.UPLOAD])
            & (source.storage_column("node_id") != 0))
    nodes = source.storage_column("node_id")[mask]
    sizes = source.storage_column("size_bytes")[mask]
    ext_codes, ext_categories = source.storage_codes("extension")
    ext_codes = ext_codes[mask]
    if nodes.size == 0:
        return sizes.astype(float), ext_codes, ext_categories
    reversed_nodes = nodes[::-1]
    _, first_in_reversed = np.unique(reversed_nodes, return_index=True)
    last_positions = (nodes.size - 1) - first_in_reversed
    return (sizes[last_positions].astype(float), ext_codes[last_positions],
            ext_categories)


def file_size_analysis(dataset: TraceDataset,
                       include_attacks: bool = False) -> FileSizeAnalysis:
    """Compute the Fig. 4b file-size distributions from uploaded files."""
    all_sizes, ext_codes, categories = _distinct_file_arrays(dataset, include_attacks)
    by_extension: dict[str, np.ndarray] = {}
    for code, extension in enumerate(categories):
        sizes = all_sizes[ext_codes == code]
        if sizes.size:
            by_extension[extension] = sizes
    return FileSizeAnalysis(
        sizes_by_extension=by_extension,
        all_sizes=all_sizes,
    )


@dataclass(frozen=True)
class CategoryShare:
    """Fig. 4c point for one file category."""

    category: str
    file_share: float
    storage_share: float
    file_count: int
    storage_bytes: int


def category_shares(dataset: TraceDataset,
                    include_attacks: bool = False) -> dict[str, CategoryShare]:
    """Compute the Fig. 4c number-of-files vs storage-space shares."""
    sizes, ext_codes, categories = _distinct_file_arrays(dataset, include_attacks)
    counts: dict[str, int] = {c: 0 for c in FILE_CATEGORIES}
    storage: dict[str, int] = {c: 0 for c in FILE_CATEGORIES}
    category_index = {c: i for i, c in enumerate(FILE_CATEGORIES)}
    # extension code -> category row, computed once per distinct extension.
    row_of = np.asarray([category_index[category_of_extension(ext)]
                         for ext in categories], dtype=np.intp)
    if sizes.size:
        rows = row_of[ext_codes]
        count_rows = np.bincount(rows, minlength=len(FILE_CATEGORIES))
        byte_rows = np.bincount(rows, weights=sizes,
                                minlength=len(FILE_CATEGORIES))
        for category, i in category_index.items():
            counts[category] = int(count_rows[i])
            storage[category] = int(byte_rows[i])
    total_files = sum(counts.values()) or 1
    total_storage = sum(storage.values()) or 1
    return {
        category: CategoryShare(
            category=category,
            file_share=counts[category] / total_files,
            storage_share=storage[category] / total_storage,
            file_count=counts[category],
            storage_bytes=storage[category],
        )
        for category in counts
    }


def format_category_table(shares: dict[str, CategoryShare]) -> str:
    """Render the Fig. 4c data as an aligned text table."""
    lines = [f"{'Category':<14} {'files %':>8} {'storage %':>10} {'files':>9} {'MB':>12}"]
    for share in sorted(shares.values(), key=lambda s: s.file_share, reverse=True):
        lines.append(
            f"{share.category:<14} {share.file_share * 100:>7.1f}% "
            f"{share.storage_share * 100:>9.1f}% {share.file_count:>9} "
            f"{share.storage_bytes / MB:>12.1f}")
    return "\n".join(lines)
