"""File sizes per extension and file-type taxonomy (Section 5.3, Fig. 4b/4c).

* **Fig. 4b** — the overall file-size distribution (90 % of files below
  1 MB) and the per-extension size CDFs, which are very disparate:
  incompressible media/compressed files are much larger than code or
  documents.
* **Fig. 4c** — classifying the most popular extensions into 7 categories
  and plotting, for each category, its share of the number of files against
  its share of the consumed storage: Code holds the largest fraction of
  files but minimal storage, while Audio/Video dominates storage consumption
  despite being a small fraction of the files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.stats import EmpiricalCDF
from repro.util.units import MB
from repro.workload.filemodel import FILE_CATEGORIES, category_of_extension

__all__ = [
    "FileSizeAnalysis",
    "file_size_analysis",
    "CategoryShare",
    "category_shares",
]


@dataclass(frozen=True)
class FileSizeAnalysis:
    """Overall and per-extension file-size distributions (Fig. 4b)."""

    sizes_by_extension: dict[str, np.ndarray]
    all_sizes: np.ndarray

    @property
    def n_files(self) -> int:
        """Number of distinct uploaded files considered."""
        return int(self.all_sizes.size)

    def overall_cdf(self) -> EmpiricalCDF:
        """CDF of all file sizes."""
        if self.all_sizes.size == 0:
            raise ValueError("no files observed")
        return EmpiricalCDF(self.all_sizes)

    def extension_cdf(self, extension: str) -> EmpiricalCDF:
        """CDF of the sizes of one extension."""
        sizes = self.sizes_by_extension.get(extension)
        if sizes is None or sizes.size == 0:
            raise ValueError(f"no files with extension {extension!r}")
        return EmpiricalCDF(sizes)

    def fraction_below(self, size_bytes: float) -> float:
        """Fraction of files smaller than ``size_bytes`` (paper: 90 % < 1 MB)."""
        if self.all_sizes.size == 0:
            return 0.0
        return float(np.mean(self.all_sizes < size_bytes))

    def median_size(self, extension: str | None = None) -> float:
        """Median size, overall or for one extension."""
        sizes = self.all_sizes if extension is None else self.sizes_by_extension.get(
            extension, np.empty(0))
        if sizes.size == 0:
            raise ValueError("no files observed")
        return float(np.median(sizes))

    def top_extensions(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most popular extensions with their file counts."""
        counts = [(ext, sizes.size) for ext, sizes in self.sizes_by_extension.items()]
        counts.sort(key=lambda item: item[1], reverse=True)
        return counts[:n]


def _distinct_files(dataset: TraceDataset, include_attacks: bool):
    """Last observed (size, extension) per distinct uploaded file node."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    per_node: dict[int, tuple[int, str]] = {}
    for record in source.uploads():
        if record.node_id:
            per_node[record.node_id] = (record.size_bytes, record.extension)
    return per_node


def file_size_analysis(dataset: TraceDataset,
                       include_attacks: bool = False) -> FileSizeAnalysis:
    """Compute the Fig. 4b file-size distributions from uploaded files."""
    per_node = _distinct_files(dataset, include_attacks)
    by_extension: dict[str, list[float]] = {}
    all_sizes: list[float] = []
    for size, extension in per_node.values():
        all_sizes.append(float(size))
        by_extension.setdefault(extension, []).append(float(size))
    return FileSizeAnalysis(
        sizes_by_extension={ext: np.asarray(v, dtype=float)
                            for ext, v in by_extension.items()},
        all_sizes=np.asarray(all_sizes, dtype=float),
    )


@dataclass(frozen=True)
class CategoryShare:
    """Fig. 4c point for one file category."""

    category: str
    file_share: float
    storage_share: float
    file_count: int
    storage_bytes: int


def category_shares(dataset: TraceDataset,
                    include_attacks: bool = False) -> dict[str, CategoryShare]:
    """Compute the Fig. 4c number-of-files vs storage-space shares."""
    per_node = _distinct_files(dataset, include_attacks)
    counts: dict[str, int] = {c: 0 for c in FILE_CATEGORIES}
    storage: dict[str, int] = {c: 0 for c in FILE_CATEGORIES}
    for size, extension in per_node.values():
        category = category_of_extension(extension)
        counts[category] = counts.get(category, 0) + 1
        storage[category] = storage.get(category, 0) + size
    total_files = sum(counts.values()) or 1
    total_storage = sum(storage.values()) or 1
    return {
        category: CategoryShare(
            category=category,
            file_share=counts[category] / total_files,
            storage_share=storage[category] / total_storage,
            file_count=counts[category],
            storage_bytes=storage[category],
        )
        for category in counts
    }


def format_category_table(shares: dict[str, CategoryShare]) -> str:
    """Render the Fig. 4c data as an aligned text table."""
    lines = [f"{'Category':<14} {'files %':>8} {'storage %':>10} {'files':>9} {'MB':>12}"]
    for share in sorted(shares.values(), key=lambda s: s.file_share, reverse=True):
        lines.append(
            f"{share.category:<14} {share.file_share * 100:>7.1f}% "
            f"{share.storage_share * 100:>9.1f}% {share.file_count:>9} "
            f"{share.storage_bytes / MB:>12.1f}")
    return "\n".join(lines)
