"""Online vs active users and operation frequencies (Section 6.1, Figs. 6/7a).

* A user is **online** in a given hour when their desktop client exhibits any
  interaction with the server (including maintenance/notification traffic);
  a user is **active** when they perform data-management operations.  Active
  users are a small minority — 3.5 % to 16.25 % of the online users at any
  moment — which shows that the actual storage workload is light compared to
  the potential of the user population.
* The most frequent API operations are data-management ones (downloads,
  uploads, deletions); session start-up operations (ListVolumes, ...) are not
  dominant because the U1 client does not poll during idle periods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation

#: Codes of the data-management operations (the paper's "active user" test).
_DATA_MANAGEMENT_CODES = np.asarray(
    [OPERATION_CODE[op] for op in ApiOperation if op.is_data_management],
    dtype=np.int16)
from repro.util.timebin import TimeBinner, bin_unique_series
from repro.util.units import HOUR

__all__ = [
    "OnlineActiveSeries",
    "online_active_users",
    "operation_counts",
    "OperationCountReport",
]


@dataclass(frozen=True)
class OnlineActiveSeries:
    """Per-hour counts of online and active users (Fig. 6)."""

    bin_edges: np.ndarray
    online: np.ndarray
    active: np.ndarray
    bin_width: float

    def active_share(self) -> np.ndarray:
        """Fraction of online users that are active, per hour."""
        online = np.maximum(self.online, 1.0)
        return self.active / online

    def active_share_range(self) -> tuple[float, float]:
        """Min/max active share over hours with at least one online user.

        The paper reports a range of 3.49 % to 16.25 %.
        """
        mask = self.online > 0
        if not np.any(mask):
            return 0.0, 0.0
        shares = self.active[mask] / self.online[mask]
        return float(shares.min()), float(shares.max())


def online_active_users(dataset: TraceDataset, bin_width: float = HOUR,
                        include_attacks: bool = False) -> OnlineActiveSeries:
    """Compute the Fig. 6 online/active users-per-hour series."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    # Columnar fast path: concatenate the session and storage columns and
    # deduplicate (bin, user) pairs vectorised.
    storage_ts = source.storage_column("timestamp")
    storage_users = source.storage_column("user_id")
    online_ts = np.concatenate([source.session_column("timestamp"), storage_ts])
    online_users = np.concatenate([source.session_column("user_id"), storage_users])
    online = bin_unique_series(binner, (online_ts, online_users))
    management = np.isin(source.storage_column("operation"), _DATA_MANAGEMENT_CODES)
    active = bin_unique_series(binner, (storage_ts[management],
                                        storage_users[management]))
    return OnlineActiveSeries(bin_edges=binner.edges(), online=online,
                              active=active, bin_width=bin_width)


@dataclass(frozen=True)
class OperationCountReport:
    """Absolute number of operations per API type (Fig. 7a)."""

    counts: dict[ApiOperation, int]

    def total(self) -> int:
        """Total number of operations."""
        return sum(self.counts.values())

    def most_common(self, n: int | None = None) -> list[tuple[ApiOperation, int]]:
        """Operations sorted by decreasing frequency."""
        ordered = sorted(self.counts.items(), key=lambda item: item[1], reverse=True)
        return ordered if n is None else ordered[:n]

    def data_management_share(self) -> float:
        """Share of operations that are data management (vs maintenance)."""
        total = self.total()
        if total == 0:
            return 0.0
        data = sum(count for op, count in self.counts.items() if op.is_data_management)
        return data / total

    def share(self, operation: ApiOperation) -> float:
        """Share of one operation among all operations."""
        total = self.total()
        return self.counts.get(operation, 0) / total if total else 0.0


def operation_counts(dataset: TraceDataset,
                     include_attacks: bool = False,
                     include_sessions: bool = True) -> OperationCountReport:
    """Count operations per API type (Fig. 7a).

    ``include_sessions`` adds OpenSession/CloseSession pseudo-operations
    derived from the session stream, as the paper's figure does.
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: one bincount over the operation-code column.
    operations = list(ApiOperation)
    code_counts = np.bincount(source.storage_column("operation"),
                              minlength=len(operations))
    counts: dict[ApiOperation, int] = {
        operations[code]: int(count)
        for code, count in enumerate(code_counts) if count
    }
    if include_sessions:
        from repro.trace.dataset import SESSION_EVENT_CODE
        from repro.trace.records import SessionEvent
        events = source.session_column("event")
        opens = int(np.sum(events == SESSION_EVENT_CODE[SessionEvent.CONNECT]))
        closes = int(np.sum(events == SESSION_EVENT_CODE[SessionEvent.DISCONNECT]))
        if opens:
            counts[ApiOperation.OPEN_SESSION] = opens
        if closes:
            counts[ApiOperation.CLOSE_SESSION] = closes
    return OperationCountReport(counts=counts)
