"""Burstiness of user operations (Section 6.2, Fig. 9).

The paper analyses the inter-arrival times between consecutive operations of
the same user (Unlink and Upload in the figure) and finds that:

* the time series exhibits large spikes — very long inter-operation times —
  incompatible with an exponential (Poisson) model;
* the empirical distributions can be approximated by a power law
  ``P(X >= x) ~ x^-alpha`` with 1 < alpha < 2 over a central region
  (alpha = 1.54 for uploads, alpha = 1.44 for unlinks), i.e. users issue
  requests in bursts separated by long idle periods;
* metadata operations follow the power law more closely than data
  operations, whose timing is perturbed by the transfers themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.powerlaw import PowerLawFit, ccdf_points, fit_power_law, is_bursty

__all__ = ["BurstinessAnalysis", "inter_operation_times", "burstiness_analysis"]


def inter_operation_times(dataset: TraceDataset, operation: ApiOperation,
                          include_attacks: bool = False) -> np.ndarray:
    """Per-user inter-arrival times of one operation type (seconds).

    Columnar fast path: select the operation's records, lexsort by
    ``(user, timestamp)`` and difference consecutive timestamps, dropping
    the pairs that straddle a user boundary.
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    mask = source.storage_column("operation") == OPERATION_CODE[operation]
    timestamps = source.storage_column("timestamp")[mask]
    users = source.storage_column("user_id")[mask]
    if timestamps.size < 2:
        return np.empty(0)
    order = np.lexsort((timestamps, users))
    ts_sorted = timestamps[order]
    users_sorted = users[order]
    gaps = ts_sorted[1:] - ts_sorted[:-1]
    same_user = users_sorted[1:] == users_sorted[:-1]
    gaps = gaps[same_user & (gaps > 0)]
    return gaps.astype(float)


@dataclass(frozen=True)
class BurstinessAnalysis:
    """Power-law fit and burstiness indicators for one operation type."""

    operation: ApiOperation
    gaps: np.ndarray
    fit: PowerLawFit
    coefficient_of_variation: float

    @property
    def is_non_poisson(self) -> bool:
        """True when the gaps are clearly over-dispersed vs an exponential."""
        return self.coefficient_of_variation > 1.5

    @property
    def alpha(self) -> float:
        """Fitted tail exponent."""
        return self.fit.alpha

    @property
    def theta(self) -> float:
        """Fitted tail threshold."""
        return self.fit.theta

    def ccdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CCDF points for log-log plotting (Fig. 9b)."""
        return ccdf_points(self.gaps)


def burstiness_analysis(dataset: TraceDataset, operation: ApiOperation,
                        include_attacks: bool = False,
                        min_samples: int = 30,
                        central_region_max: float = 2 * 3600.0) -> BurstinessAnalysis:
    """Fit the Fig. 9 power-law tail to one operation's inter-arrival times.

    Following the paper, the power law is only expected to hold over a
    central region of the domain; ``central_region_max`` truncates the very
    largest gaps (multi-day idle periods between sessions) before fitting,
    exactly as the visual fit in Fig. 9b does.
    """
    gaps = inter_operation_times(dataset, operation, include_attacks=include_attacks)
    if gaps.size < min_samples:
        raise ValueError(
            f"only {gaps.size} inter-operation gaps observed for "
            f"{operation.value}; need at least {min_samples}")
    central = gaps[gaps <= central_region_max]
    fit = fit_power_law(central if central.size >= min_samples else gaps)
    cv = float(gaps.std() / gaps.mean()) if gaps.mean() > 0 else 0.0
    # ``is_bursty`` is intentionally re-checked so the helper stays exercised
    # and the two indicators cannot drift apart silently.
    assert is_bursty(gaps, cv_threshold=1.5) == (cv > 1.5)
    return BurstinessAnalysis(operation=operation, gaps=gaps, fit=fit,
                              coefficient_of_variation=cv)
