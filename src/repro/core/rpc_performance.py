"""RPC service-time analysis (Section 7.1, Figs. 12 and 13).

Fig. 12 plots the CDF of the service time of every RPC against the metadata
store, grouped into file-system management RPCs, upload-management RPCs and
other read-only RPCs; every distribution shows a long tail (7 %-22 % of
samples far from the median).  Fig. 13 is a scatter plot of median service
time against call frequency, with RPCs classified as read, write/update/
delete or cascade: reads are the fastest, cascades are more than an order of
magnitude slower but infrequent, and writes are as frequent as reads but
slower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import RpcClass, RpcName, rpc_class_of
from repro.util.stats import EmpiricalCDF, tail_fraction_beyond

__all__ = [
    "RpcServiceTimes",
    "rpc_service_times",
    "RpcScatterPoint",
    "rpc_scatter",
    "FIG12_GROUPS",
]


#: RPC grouping of Fig. 12a/12b/12c.
FIG12_GROUPS: dict[str, tuple[RpcName, ...]] = {
    "filesystem": (
        RpcName.CREATE_UDF, RpcName.DELETE_VOLUME, RpcName.GET_VOLUME_ID,
        RpcName.LIST_SHARES, RpcName.LIST_VOLUMES, RpcName.MAKE_DIR,
        RpcName.MAKE_FILE, RpcName.MOVE, RpcName.UNLINK_NODE, RpcName.GET_DELTA,
    ),
    "upload": (
        RpcName.ADD_PART_TO_UPLOADJOB, RpcName.DELETE_UPLOADJOB,
        RpcName.GET_REUSABLE_CONTENT, RpcName.GET_UPLOADJOB,
        RpcName.MAKE_CONTENT, RpcName.MAKE_UPLOADJOB,
        RpcName.SET_UPLOADJOB_MULTIPART_ID, RpcName.TOUCH_UPLOADJOB,
    ),
    "other": (
        RpcName.GET_USER_ID_FROM_TOKEN, RpcName.GET_FROM_SCRATCH,
        RpcName.GET_NODE, RpcName.GET_ROOT, RpcName.GET_USER_DATA,
    ),
}


@dataclass(frozen=True)
class RpcServiceTimes:
    """Service-time samples grouped per RPC name (Fig. 12)."""

    samples: dict[RpcName, np.ndarray]

    def observed_rpcs(self) -> list[RpcName]:
        """RPC names with at least one sample."""
        return [rpc for rpc, values in self.samples.items() if values.size > 0]

    def cdf(self, rpc: RpcName) -> EmpiricalCDF:
        """CDF of the service times of one RPC."""
        values = self.samples.get(rpc)
        if values is None or values.size == 0:
            raise ValueError(f"no samples for RPC {rpc.value}")
        return EmpiricalCDF(values)

    def median(self, rpc: RpcName) -> float:
        """Median service time of one RPC (seconds)."""
        values = self.samples.get(rpc)
        if values is None or values.size == 0:
            raise ValueError(f"no samples for RPC {rpc.value}")
        return float(np.median(values))

    def tail_fraction(self, rpc: RpcName, multiple_of_median: float = 10.0) -> float:
        """Fraction of samples beyond ``multiple_of_median`` x the median.

        The paper's notion of "very far from the median" (7 %-22 % of
        service times across RPCs).
        """
        values = self.samples.get(rpc)
        if values is None or values.size == 0:
            raise ValueError(f"no samples for RPC {rpc.value}")
        return tail_fraction_beyond(values, multiple_of_median)

    def group_samples(self, group: str) -> dict[RpcName, np.ndarray]:
        """Samples restricted to one Fig. 12 group."""
        if group not in FIG12_GROUPS:
            raise KeyError(f"unknown Fig. 12 group {group!r}")
        return {rpc: self.samples[rpc] for rpc in FIG12_GROUPS[group]
                if rpc in self.samples and self.samples[rpc].size > 0}

    def count(self, rpc: RpcName) -> int:
        """Number of calls observed for one RPC."""
        values = self.samples.get(rpc)
        return int(values.size) if values is not None else 0


def rpc_service_times(dataset: TraceDataset,
                      include_attacks: bool = True) -> RpcServiceTimes:
    """Group RPC service times per RPC name.

    Attack traffic is included by default: the back-end served it, so its
    RPCs are part of the measured performance.
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: argsort the RPC code column once and split the
    # service-time column at the code boundaries.
    codes = source.rpc_column("rpc")
    times = source.rpc_column("service_time")
    if codes.size == 0:
        return RpcServiceTimes(samples={})
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_times = times[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    rpc_names = list(RpcName)
    samples = {
        rpc_names[int(chunk_codes[0])]: chunk_times
        for chunk_codes, chunk_times
        in zip(np.split(sorted_codes, boundaries), np.split(sorted_times, boundaries))
    }
    return RpcServiceTimes(samples=samples)


@dataclass(frozen=True)
class RpcScatterPoint:
    """One point of the Fig. 13 scatter plot."""

    rpc: RpcName
    rpc_class: RpcClass
    operation_count: int
    median_service_time: float


def rpc_scatter(dataset: TraceDataset,
                include_attacks: bool = True) -> list[RpcScatterPoint]:
    """Compute the Fig. 13 median-service-time vs frequency scatter."""
    times = rpc_service_times(dataset, include_attacks=include_attacks)
    points = []
    for rpc in times.observed_rpcs():
        points.append(RpcScatterPoint(
            rpc=rpc,
            rpc_class=rpc_class_of(rpc),
            operation_count=times.count(rpc),
            median_service_time=times.median(rpc),
        ))
    points.sort(key=lambda p: p.operation_count, reverse=True)
    return points


def class_median_ranges(points: list[RpcScatterPoint]) -> dict[RpcClass, tuple[float, float]]:
    """Min/max median service time per RPC class (used by tests/benches)."""
    ranges: dict[RpcClass, tuple[float, float]] = {}
    for point in points:
        low, high = ranges.get(point.rpc_class, (float("inf"), 0.0))
        ranges[point.rpc_class] = (min(low, point.median_service_time),
                                   max(high, point.median_service_time))
    return ranges
