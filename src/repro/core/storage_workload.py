"""Macroscopic storage workload (Section 5.1, Fig. 2).

Three analyses:

* **Fig. 2a** — time series of uploaded/downloaded GBytes per hour over the
  trace, exhibiting strong daily patterns (day-time activity up to 10x the
  night-time trough).
* **Fig. 2b** — fraction of transferred data and of storage operations per
  file-size category: a very small number of large (> 25 MB) files consumes
  ~80-90 % of the traffic while ~85-90 % of operations involve small
  (< 0.5 MB) files.
* **Fig. 2c** — hourly read/write (download/upload) byte ratio: slightly
  read-dominated (median ~1.14), highly variable within a day (up to 8x) and
  autocorrelated over time (working-habit patterns), plus the share of
  upload operations/traffic caused by file updates (10 % of operations but
  18.5 % of bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.stats import BoxplotSummary, autocorrelation, boxplot_summary
from repro.util.timebin import TimeBinner, bin_sum_series
from repro.util.units import GB, HOUR, MB

__all__ = [
    "TrafficTimeSeries",
    "traffic_timeseries",
    "SizeCategoryBreakdown",
    "SIZE_CATEGORIES_MB",
    "traffic_by_size_category",
    "RwRatioAnalysis",
    "rw_ratio_analysis",
    "UpdateTrafficShare",
    "update_traffic_share",
]


# ---------------------------------------------------------------------------
# Fig. 2a — traffic time series
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficTimeSeries:
    """Hourly upload/download traffic (bytes per bin)."""

    bin_edges: np.ndarray
    upload_bytes: np.ndarray
    download_bytes: np.ndarray
    bin_width: float

    @property
    def upload_gb(self) -> np.ndarray:
        """Uploaded GBytes per bin."""
        return self.upload_bytes / GB

    @property
    def download_gb(self) -> np.ndarray:
        """Downloaded GBytes per bin."""
        return self.download_bytes / GB

    def peak_to_trough(self, series: np.ndarray | None = None) -> float:
        """Ratio between the busiest and the quietest non-empty bin."""
        values = self.upload_bytes if series is None else series
        positive = values[values > 0]
        if positive.size == 0:
            return 1.0
        return float(positive.max() / positive.min())

    def daily_pattern(self, series: np.ndarray | None = None) -> np.ndarray:
        """Average traffic per hour of day (24 values), for the daily shape."""
        values = self.upload_bytes if series is None else series
        hours_per_day = int(round(86400 / self.bin_width))
        pattern = np.zeros(hours_per_day)
        counts = np.zeros(hours_per_day)
        for i, value in enumerate(values):
            pattern[i % hours_per_day] += value
            counts[i % hours_per_day] += 1
        counts[counts == 0] = 1
        return pattern / counts


def traffic_timeseries(dataset: TraceDataset, bin_width: float = HOUR,
                       include_attacks: bool = False) -> TrafficTimeSeries:
    """Compute the Fig. 2a hourly traffic series."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    # Columnar fast path: operation-code masks over the cached columns.
    ts = source.storage_column("timestamp")
    sizes = source.storage_column("size_bytes")
    codes = source.storage_column("operation")
    up = codes == OPERATION_CODE[ApiOperation.UPLOAD]
    down = codes == OPERATION_CODE[ApiOperation.DOWNLOAD]
    uploads = bin_sum_series(binner, (ts[up], sizes[up]))
    downloads = bin_sum_series(binner, (ts[down], sizes[down]))
    return TrafficTimeSeries(bin_edges=binner.edges(), upload_bytes=uploads,
                             download_bytes=downloads, bin_width=bin_width)


# ---------------------------------------------------------------------------
# Fig. 2b — traffic vs file-size category
# ---------------------------------------------------------------------------

#: File-size categories of Fig. 2b, in MBytes: (< 0.5), (0.5-1), (1-5),
#: (5-25), (> 25).
SIZE_CATEGORIES_MB: tuple[tuple[float, float], ...] = (
    (0.0, 0.5), (0.5, 1.0), (1.0, 5.0), (5.0, 25.0), (25.0, float("inf")),
)


@dataclass(frozen=True)
class SizeCategoryBreakdown:
    """Per-size-category shares of operations and traffic (Fig. 2b)."""

    categories: tuple[str, ...]
    upload_operation_share: np.ndarray
    download_operation_share: np.ndarray
    upload_traffic_share: np.ndarray
    download_traffic_share: np.ndarray

    def rows(self) -> list[tuple[str, float, float, float, float]]:
        """One row per category: (label, up ops, down ops, up bytes, down bytes)."""
        return [
            (label,
             float(self.upload_operation_share[i]),
             float(self.download_operation_share[i]),
             float(self.upload_traffic_share[i]),
             float(self.download_traffic_share[i]))
            for i, label in enumerate(self.categories)
        ]


def _category_label(low: float, high: float) -> str:
    if high == float("inf"):
        return f">{low:g}MB"
    if low == 0.0:
        return f"<{high:g}MB"
    return f"{low:g}-{high:g}MB"


def _share_by_category(sizes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-size-category shares from a size_bytes array."""
    n_categories = len(SIZE_CATEGORIES_MB)
    edges = np.asarray([high * MB for _, high in SIZE_CATEGORIES_MB[:-1]])
    category = np.searchsorted(edges, sizes, side="right")
    ops = np.bincount(category, minlength=n_categories).astype(float)
    traffic = np.bincount(category, weights=sizes, minlength=n_categories)
    ops_total = ops.sum() or 1.0
    traffic_total = traffic.sum() or 1.0
    return ops / ops_total, traffic / traffic_total


def traffic_by_size_category(dataset: TraceDataset,
                             include_attacks: bool = False) -> SizeCategoryBreakdown:
    """Compute the Fig. 2b shares of operations and traffic by file size."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    codes = source.storage_column("operation")
    sizes = source.storage_column("size_bytes").astype(float)
    up = codes == OPERATION_CODE[ApiOperation.UPLOAD]
    down = codes == OPERATION_CODE[ApiOperation.DOWNLOAD]
    upload_ops, upload_traffic = _share_by_category(sizes[up])
    download_ops, download_traffic = _share_by_category(sizes[down])
    labels = tuple(_category_label(low, high) for low, high in SIZE_CATEGORIES_MB)
    return SizeCategoryBreakdown(
        categories=labels,
        upload_operation_share=upload_ops,
        download_operation_share=download_ops,
        upload_traffic_share=upload_traffic,
        download_traffic_share=download_traffic,
    )


# ---------------------------------------------------------------------------
# Fig. 2c — R/W ratio
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RwRatioAnalysis:
    """Hourly R/W (download/upload) byte ratios and their autocorrelation."""

    ratios: np.ndarray
    boxplot: BoxplotSummary
    acf: np.ndarray
    confidence_bound: float

    @property
    def median(self) -> float:
        """Median hourly R/W ratio (the paper reports 1.14)."""
        return self.boxplot.median

    @property
    def mean(self) -> float:
        """Mean hourly R/W ratio (the paper reports 1.17)."""
        return self.boxplot.mean

    @property
    def is_read_dominated(self) -> bool:
        """True when downloads exceed uploads on the median hour."""
        return self.median > 1.0

    def significant_lags(self) -> int:
        """Number of lags (>0) whose ACF exceeds the 95 % confidence bound."""
        return int(np.sum(np.abs(self.acf[1:]) > self.confidence_bound))

    def is_correlated(self) -> bool:
        """True when well over 5 % of lags fall outside the confidence bound."""
        n_lags = max(len(self.acf) - 1, 1)
        return self.significant_lags() > 0.15 * n_lags


def rw_ratio_analysis(dataset: TraceDataset, bin_width: float = HOUR,
                      max_lag: int | None = None,
                      include_attacks: bool = False,
                      min_bytes: float = 0.0) -> RwRatioAnalysis:
    """Compute the Fig. 2c R/W ratio boxplot and autocorrelation.

    ``min_bytes`` excludes bins where either direction moved fewer bytes than
    the threshold: at laptop scale a nearly idle hour (a few KB uploaded
    against a large download) would otherwise produce meaningless ratio
    outliers that the full-scale trace never exhibits.
    """
    series = traffic_timeseries(dataset, bin_width=bin_width,
                                include_attacks=include_attacks)
    mask = (series.upload_bytes > min_bytes) & (series.download_bytes > min_bytes)
    ratios = series.download_bytes[mask] / series.upload_bytes[mask]
    if ratios.size < 3:
        raise ValueError("not enough busy hours to analyse the R/W ratio")
    acf = autocorrelation(ratios, max_lag=max_lag)
    bound = 2.0 / np.sqrt(ratios.size)
    return RwRatioAnalysis(ratios=ratios, boxplot=boxplot_summary(ratios),
                           acf=acf, confidence_bound=bound)


# ---------------------------------------------------------------------------
# Update traffic share (Section 5.1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UpdateTrafficShare:
    """Share of upload operations and bytes caused by file updates."""

    update_operations: int
    total_operations: int
    update_bytes: int
    total_bytes: int

    @property
    def operation_share(self) -> float:
        """Fraction of uploads that are updates (paper: 10.05 %)."""
        return self.update_operations / self.total_operations if self.total_operations else 0.0

    @property
    def traffic_share(self) -> float:
        """Fraction of upload bytes caused by updates (paper: 18.47 %)."""
        return self.update_bytes / self.total_bytes if self.total_bytes else 0.0


def update_traffic_share(dataset: TraceDataset,
                         include_attacks: bool = False) -> UpdateTrafficShare:
    """Quantify how much upload traffic is due to updates of existing files."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    upload_mask = (source.storage_column("operation")
                   == OPERATION_CODE[ApiOperation.UPLOAD])
    update_mask = upload_mask & source.storage_column("is_update")
    sizes = source.storage_column("size_bytes")
    return UpdateTrafficShare(
        update_operations=int(update_mask.sum()),
        total_operations=int(upload_mask.sum()),
        update_bytes=int(sizes[update_mask].sum()),
        total_bytes=int(sizes[upload_mask].sum()),
    )
