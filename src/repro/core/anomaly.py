"""DDoS / abuse detection (Section 5.4, Fig. 5).

The paper found three DDoS attacks during the measurement month by looking at
the per-hour time series of request rates per request type: under attack the
session and authentication activity jumped 5-15x over the usual level and the
API storage activity up to 245x, because a single compromised account was
shared across thousands of desktop clients to distribute illegal content.

:func:`detect_anomalies` reproduces that detection: it builds per-hour rate
series per request family (rpc / session / auth / storage), establishes a
robust baseline (median of the same hour-of-day across the trace) and flags
hours whose rate exceeds ``threshold`` times the baseline.  Consecutive
flagged hours are merged into :class:`AttackWindow` episodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import SESSION_EVENT_CODE, TraceDataset
from repro.trace.records import SessionEvent
from repro.util.timebin import TimeBinner, bin_count_series
from repro.util.units import HOUR

__all__ = [
    "RequestRateSeries",
    "request_rate_series",
    "AttackWindow",
    "detect_anomalies",
    "attack_amplification",
]


@dataclass(frozen=True)
class RequestRateSeries:
    """Per-hour request counts per request family (Fig. 5)."""

    bin_edges: np.ndarray
    rpc: np.ndarray
    session: np.ndarray
    auth: np.ndarray
    storage: np.ndarray
    bin_width: float

    def series(self, family: str) -> np.ndarray:
        """One of the four series by name."""
        try:
            return getattr(self, family)
        except AttributeError:
            raise KeyError(f"unknown request family {family!r}") from None


def request_rate_series(dataset: TraceDataset,
                        bin_width: float = HOUR) -> RequestRateSeries:
    """Build the per-hour request-rate series of Fig. 5 (attacks included)."""
    start, end = dataset.time_span()
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    # Columnar fast path: event-code masks over the cached session columns.
    session_ts = dataset.session_column("timestamp")
    event_codes = dataset.session_column("event")
    connectish = np.isin(event_codes, [SESSION_EVENT_CODE[SessionEvent.CONNECT],
                                       SESSION_EVENT_CODE[SessionEvent.DISCONNECT]])
    authish = np.isin(event_codes, [SESSION_EVENT_CODE[SessionEvent.AUTH_REQUEST],
                                    SESSION_EVENT_CODE[SessionEvent.AUTH_OK],
                                    SESSION_EVENT_CODE[SessionEvent.AUTH_FAIL]])
    rpc = bin_count_series(binner, dataset.rpc_column("timestamp"))
    session = bin_count_series(binner, session_ts[connectish])
    auth = bin_count_series(binner, session_ts[authish])
    storage = bin_count_series(binner, dataset.storage_column("timestamp"))
    return RequestRateSeries(bin_edges=binner.edges(), rpc=rpc, session=session,
                             auth=auth, storage=storage, bin_width=bin_width)


@dataclass(frozen=True)
class AttackWindow:
    """A detected anomalous window."""

    start: float
    end: float
    peak_rate: float
    baseline_rate: float
    family: str

    @property
    def amplification(self) -> float:
        """Peak rate relative to the baseline."""
        if self.baseline_rate <= 0:
            return float("inf")
        return self.peak_rate / self.baseline_rate

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.end - self.start


def _hour_of_day_baseline(series: np.ndarray, bins_per_day: int) -> np.ndarray:
    """Median rate per position-in-day, broadcast back over the series."""
    baseline = np.empty_like(series)
    for offset in range(bins_per_day):
        values = series[offset::bins_per_day]
        if values.size == 0:
            # Trace shorter than a day: positions past the last bin have no
            # samples at all (np.median would warn and yield NaN).
            continue
        positive = values[values > 0]
        med = float(np.median(positive)) if positive.size else float(np.median(values))
        baseline[offset::bins_per_day] = max(med, 1.0)
    return baseline


def detect_anomalies(dataset: TraceDataset, family: str = "storage",
                     threshold: float = 4.0,
                     bin_width: float = HOUR) -> list[AttackWindow]:
    """Detect anomalous activity windows in one request family.

    ``threshold`` is the multiple of the hour-of-day baseline above which an
    hour is flagged; consecutive flagged hours are merged into one window.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1")
    rates = request_rate_series(dataset, bin_width=bin_width)
    series = rates.series(family)
    bins_per_day = max(1, int(round(86400 / bin_width)))
    baseline = _hour_of_day_baseline(series, bins_per_day)
    flagged = series > threshold * baseline

    windows: list[AttackWindow] = []
    i = 0
    while i < flagged.size:
        if not flagged[i]:
            i += 1
            continue
        j = i
        while j + 1 < flagged.size and flagged[j + 1]:
            j += 1
        segment = slice(i, j + 1)
        windows.append(AttackWindow(
            start=float(rates.bin_edges[i]),
            end=float(rates.bin_edges[j] + bin_width),
            peak_rate=float(series[segment].max()),
            baseline_rate=float(baseline[segment].mean()),
            family=family,
        ))
        i = j + 1
    return windows


def attack_amplification(dataset: TraceDataset,
                         bin_width: float = HOUR) -> dict[str, float]:
    """Peak-over-typical amplification per request family.

    Uses the ground-truth attack labels carried by the synthetic trace when
    present (records with ``caused_by_attack``); reproduces the "activity
    under attack was 5-245x higher than usual" style of statement.
    """
    rates_all = request_rate_series(dataset, bin_width=bin_width)
    legit = dataset.without_attack_traffic()
    rates_legit = request_rate_series(legit, bin_width=bin_width)
    result: dict[str, float] = {}
    for family in ("session", "auth", "storage"):
        all_series = rates_all.series(family)
        legit_series = rates_legit.series(family)
        typical = float(np.median(legit_series[legit_series > 0])) if np.any(
            legit_series > 0) else 1.0
        result[family] = float(all_series.max()) / max(typical, 1.0)
    return result
