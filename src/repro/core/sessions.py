"""Authentication activity and session behaviour (Section 7.3, Figs. 15/16).

* **Fig. 15** — per-hour time series of API session-management operations and
  authentication-service requests: clear daily/weekly patterns (50-60 %
  higher during the day, Mondays ~15 % above weekends), and 2.76 % of
  authentication requests fail.
* **Fig. 16** — session lengths and per-session storage operations: 97 % of
  sessions are shorter than 8 hours, ~32 % are shorter than one second
  (NAT/firewall resets); only 5.57 % of sessions are *active* (perform any
  data management), active sessions are much longer than cold ones, and 20 %
  of the active sessions account for ~96.7 % of all storage operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import SESSION_EVENT_CODE, TraceDataset
from repro.trace.records import SessionEvent
from repro.util.stats import EmpiricalCDF
from repro.util.timebin import TimeBinner, bin_count_series
from repro.util.units import HOUR

__all__ = [
    "AuthActivitySeries",
    "auth_activity",
    "SessionAnalysis",
    "session_analysis",
]


@dataclass(frozen=True)
class AuthActivitySeries:
    """Hourly session-management and authentication request counts (Fig. 15)."""

    bin_edges: np.ndarray
    session_requests: np.ndarray
    auth_requests: np.ndarray
    auth_failures: int
    auth_total: int
    bin_width: float

    @property
    def auth_failure_ratio(self) -> float:
        """Observed fraction of failed authentication requests (paper: 2.76 %)."""
        return self.auth_failures / self.auth_total if self.auth_total else 0.0

    def day_night_ratio(self) -> float:
        """Mean daytime (9-17h) rate over mean night-time (0-6h) rate."""
        bins_per_day = max(1, int(round(86400 / self.bin_width)))
        day_idx = [i for i in range(self.auth_requests.size)
                   if 9 <= (i % bins_per_day) * (self.bin_width / HOUR) < 17]
        night_idx = [i for i in range(self.auth_requests.size)
                     if (i % bins_per_day) * (self.bin_width / HOUR) < 6]
        day = self.auth_requests[day_idx].mean() if day_idx else 0.0
        night = self.auth_requests[night_idx].mean() if night_idx else 0.0
        if night == 0:
            return float("inf") if day > 0 else 1.0
        return float(day / night)


def auth_activity(dataset: TraceDataset, bin_width: float = HOUR,
                  include_attacks: bool = True) -> AuthActivitySeries:
    """Build the Fig. 15 authentication/session activity series."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    # Columnar fast path: event-code masks over the cached session columns.
    ts = source.session_column("timestamp")
    event_codes = source.session_column("event")
    connectish = np.isin(event_codes, [SESSION_EVENT_CODE[SessionEvent.CONNECT],
                                       SESSION_EVENT_CODE[SessionEvent.DISCONNECT]])
    requests = event_codes == SESSION_EVENT_CODE[SessionEvent.AUTH_REQUEST]
    failures = int(np.sum(event_codes == SESSION_EVENT_CODE[SessionEvent.AUTH_FAIL]))
    return AuthActivitySeries(
        bin_edges=binner.edges(),
        session_requests=bin_count_series(binner, ts[connectish]),
        auth_requests=bin_count_series(binner, ts[requests]),
        auth_failures=failures,
        auth_total=int(np.sum(requests)),
        bin_width=bin_width,
    )


@dataclass(frozen=True)
class SessionAnalysis:
    """Session lengths and per-session storage activity (Fig. 16)."""

    lengths: np.ndarray
    storage_operations: np.ndarray

    @property
    def n_sessions(self) -> int:
        """Number of completed sessions observed."""
        return int(self.lengths.size)

    @property
    def active_sessions(self) -> int:
        """Sessions that performed at least one storage operation."""
        return int(np.sum(self.storage_operations > 0))

    @property
    def active_share(self) -> float:
        """Fraction of sessions that are active (paper: 5.57 %)."""
        return self.active_sessions / self.n_sessions if self.n_sessions else 0.0

    def length_cdf(self, active_only: bool = False) -> EmpiricalCDF:
        """CDF of session lengths (all sessions or active sessions only)."""
        if active_only:
            lengths = self.lengths[self.storage_operations > 0]
        else:
            lengths = self.lengths
        if lengths.size == 0:
            raise ValueError("no sessions to analyse")
        return EmpiricalCDF(lengths)

    def share_shorter_than(self, seconds: float) -> float:
        """Fraction of sessions shorter than ``seconds``."""
        if self.lengths.size == 0:
            return 0.0
        return float(np.mean(self.lengths < seconds))

    def median_length(self, active_only: bool = False) -> float:
        """Median session length."""
        return self.length_cdf(active_only=active_only).median()

    def operations_cdf(self) -> EmpiricalCDF:
        """CDF of storage operations per active session (inner plot, Fig. 16)."""
        active = self.storage_operations[self.storage_operations > 0]
        if active.size == 0:
            raise ValueError("no active sessions observed")
        return EmpiricalCDF(active)

    def top_sessions_share(self, top_fraction: float = 0.2) -> float:
        """Share of storage operations performed by the busiest sessions.

        The paper reports that the top 20 % of active sessions account for
        96.7 % of all data-management operations.
        """
        active = np.sort(self.storage_operations[self.storage_operations > 0])[::-1]
        if active.size == 0:
            return 0.0
        k = max(1, int(round(top_fraction * active.size)))
        return float(active[:k].sum() / active.sum())


def session_analysis(dataset: TraceDataset,
                     include_attacks: bool = False) -> SessionAnalysis:
    """Build the Fig. 16 session-length / operations-per-session analysis."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: DISCONNECT records carry the session metadata.
    disconnect = (source.session_column("event")
                  == SESSION_EVENT_CODE[SessionEvent.DISCONNECT])
    lengths = np.maximum(source.session_column("session_length")[disconnect], 0.0)
    operations = source.session_column("storage_operations")[disconnect].astype(float)
    return SessionAnalysis(lengths=lengths, storage_operations=operations)
