"""User volumes: contents and types (Section 6.3, Figs. 10 and 11).

* **Fig. 10** — files vs directories within user volumes: files are much more
  numerous than directories, the two counts are strongly correlated
  (Pearson ~0.998) and a small fraction of volumes is heavily loaded (5 % of
  volumes hold more than 1,000 files).
* **Fig. 11** — distribution of user-defined (UDF) and shared volumes across
  users: 58 % of users created at least one UDF but only 1.8 % have a shared
  volume — U1 was used as personal storage rather than for collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import ApiOperation, NodeKind, VolumeType
from repro.util.stats import EmpiricalCDF, pearson_correlation

__all__ = [
    "VolumeContents",
    "volume_contents",
    "VolumeTypeDistribution",
    "volume_type_distribution",
]


@dataclass(frozen=True)
class VolumeContents:
    """Files and directories per volume (Fig. 10)."""

    files_per_volume: dict[int, int]
    directories_per_volume: dict[int, int]

    def counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Aligned arrays of (files, directories) per volume."""
        volumes = sorted(set(self.files_per_volume) | set(self.directories_per_volume))
        files = np.asarray([self.files_per_volume.get(v, 0) for v in volumes], dtype=float)
        dirs = np.asarray([self.directories_per_volume.get(v, 0) for v in volumes],
                          dtype=float)
        return files, dirs

    def correlation(self) -> float:
        """Pearson correlation between files and directories per volume."""
        files, dirs = self.counts()
        if files.size < 2:
            return 0.0
        return pearson_correlation(files, dirs)

    def files_cdf(self) -> EmpiricalCDF:
        """CDF of the number of files per volume."""
        files, _ = self.counts()
        return EmpiricalCDF(files)

    def directories_cdf(self) -> EmpiricalCDF:
        """CDF of the number of directories per volume."""
        _, dirs = self.counts()
        return EmpiricalCDF(dirs)

    def share_with_files(self) -> float:
        """Fraction of volumes containing at least one file (paper: >60 %)."""
        files, _ = self.counts()
        if files.size == 0:
            return 0.0
        return float(np.mean(files > 0))

    def share_heavily_loaded(self, threshold: int = 1000) -> float:
        """Fraction of volumes holding more than ``threshold`` files."""
        files, _ = self.counts()
        if files.size == 0:
            return 0.0
        return float(np.mean(files > threshold))


def volume_contents(dataset: TraceDataset,
                    include_attacks: bool = False) -> VolumeContents:
    """Reconstruct per-volume file/directory counts from storage records.

    A node is attributed to the volume it was last seen in; only nodes that
    were referenced by at least one operation in the trace are counted
    (exactly what the back-end logs allow).
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    node_volume: dict[int, tuple[int, NodeKind]] = {}
    volumes: set[int] = set()
    for record in source.storage:
        if record.volume_id:
            volumes.add(record.volume_id)
        if record.node_id:
            node_volume[record.node_id] = (record.volume_id, record.node_kind)
    files: dict[int, int] = {v: 0 for v in volumes}
    dirs: dict[int, int] = {v: 0 for v in volumes}
    for volume_id, kind in node_volume.values():
        if kind is NodeKind.DIRECTORY:
            dirs[volume_id] = dirs.get(volume_id, 0) + 1
        else:
            files[volume_id] = files.get(volume_id, 0) + 1
    return VolumeContents(files_per_volume=files, directories_per_volume=dirs)


@dataclass(frozen=True)
class VolumeTypeDistribution:
    """UDF / shared volumes per user (Fig. 11)."""

    udf_volumes_per_user: dict[int, int]
    shared_volumes_per_user: dict[int, int]
    total_users: int

    def share_with_udf(self) -> float:
        """Fraction of users with at least one UDF volume (paper: 58 %)."""
        with_udf = sum(1 for count in self.udf_volumes_per_user.values() if count > 0)
        return with_udf / self.total_users if self.total_users else 0.0

    def share_with_shared(self) -> float:
        """Fraction of users with at least one shared volume (paper: 1.8 %)."""
        with_shared = sum(1 for count in self.shared_volumes_per_user.values() if count > 0)
        return with_shared / self.total_users if self.total_users else 0.0

    def udf_cdf(self) -> EmpiricalCDF:
        """CDF of UDF volumes per user (over all users, zeros included)."""
        values = [self.udf_volumes_per_user.get(u, 0)
                  for u in range(self.total_users)]
        counts = list(self.udf_volumes_per_user.values())
        counts += [0] * max(0, self.total_users - len(self.udf_volumes_per_user))
        return EmpiricalCDF(counts if counts else values)


def volume_type_distribution(dataset: TraceDataset,
                             include_attacks: bool = False) -> VolumeTypeDistribution:
    """Count distinct UDF/shared volumes referenced per user (Fig. 11)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    udf: dict[int, set[int]] = {}
    shared: dict[int, set[int]] = {}
    for record in source.storage:
        if not record.volume_id:
            continue
        if record.volume_type is VolumeType.UDF or record.operation is ApiOperation.CREATE_UDF:
            udf.setdefault(record.user_id, set()).add(record.volume_id)
        elif record.volume_type is VolumeType.SHARED:
            shared.setdefault(record.user_id, set()).add(record.volume_id)
    return VolumeTypeDistribution(
        udf_volumes_per_user={u: len(v) for u, v in udf.items()},
        shared_volumes_per_user={u: len(v) for u, v in shared.items()},
        total_users=len(source.user_ids()),
    )
