"""User volumes: contents and types (Section 6.3, Figs. 10 and 11).

* **Fig. 10** — files vs directories within user volumes: files are much more
  numerous than directories, the two counts are strongly correlated
  (Pearson ~0.998) and a small fraction of volumes is heavily loaded (5 % of
  volumes hold more than 1,000 files).
* **Fig. 11** — distribution of user-defined (UDF) and shared volumes across
  users: 58 % of users created at least one UDF but only 1.8 % have a shared
  volume — U1 was used as personal storage rather than for collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import (
    NODE_KIND_CODE,
    OPERATION_CODE,
    VOLUME_TYPE_CODE,
    TraceDataset,
)
from repro.trace.records import ApiOperation, NodeKind, VolumeType
from repro.util.stats import EmpiricalCDF, pearson_correlation

__all__ = [
    "VolumeContents",
    "volume_contents",
    "VolumeTypeDistribution",
    "volume_type_distribution",
]


@dataclass(frozen=True)
class VolumeContents:
    """Files and directories per volume (Fig. 10)."""

    files_per_volume: dict[int, int]
    directories_per_volume: dict[int, int]

    def counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Aligned arrays of (files, directories) per volume."""
        volumes = sorted(set(self.files_per_volume) | set(self.directories_per_volume))
        files = np.asarray([self.files_per_volume.get(v, 0) for v in volumes], dtype=float)
        dirs = np.asarray([self.directories_per_volume.get(v, 0) for v in volumes],
                          dtype=float)
        return files, dirs

    def correlation(self) -> float:
        """Pearson correlation between files and directories per volume."""
        files, dirs = self.counts()
        if files.size < 2:
            return 0.0
        return pearson_correlation(files, dirs)

    def files_cdf(self) -> EmpiricalCDF:
        """CDF of the number of files per volume."""
        files, _ = self.counts()
        return EmpiricalCDF(files)

    def directories_cdf(self) -> EmpiricalCDF:
        """CDF of the number of directories per volume."""
        _, dirs = self.counts()
        return EmpiricalCDF(dirs)

    def share_with_files(self) -> float:
        """Fraction of volumes containing at least one file (paper: >60 %)."""
        files, _ = self.counts()
        if files.size == 0:
            return 0.0
        return float(np.mean(files > 0))

    def share_heavily_loaded(self, threshold: int = 1000) -> float:
        """Fraction of volumes holding more than ``threshold`` files."""
        files, _ = self.counts()
        if files.size == 0:
            return 0.0
        return float(np.mean(files > threshold))


def volume_contents(dataset: TraceDataset,
                    include_attacks: bool = False) -> VolumeContents:
    """Reconstruct per-volume file/directory counts from storage records.

    A node is attributed to the volume it was last seen in; only nodes that
    were referenced by at least one operation in the trace are counted
    (exactly what the back-end logs allow).
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: attribute each node to its last-seen volume via the
    # reversed-unique trick, then count files/dirs per volume with bincounts.
    volume_ids = source.storage_column("volume_id")
    node_ids = source.storage_column("node_id")
    volumes = np.unique(volume_ids[volume_ids != 0])
    files: dict[int, int] = {int(v): 0 for v in volumes.tolist()}
    dirs: dict[int, int] = {int(v): 0 for v in volumes.tolist()}
    node_mask = node_ids != 0
    nodes = node_ids[node_mask]
    if nodes.size:
        node_volumes = volume_ids[node_mask]
        node_kinds = source.storage_column("node_kind")[node_mask]
        reversed_nodes = nodes[::-1]
        _, first_in_reversed = np.unique(reversed_nodes, return_index=True)
        last = (nodes.size - 1) - first_in_reversed
        last_volumes = node_volumes[last]
        is_dir = node_kinds[last] == NODE_KIND_CODE[NodeKind.DIRECTORY]
        for volume_array, target in ((last_volumes[is_dir], dirs),
                                     (last_volumes[~is_dir], files)):
            distinct, counts = np.unique(volume_array, return_counts=True)
            for volume_id, count in zip(distinct.tolist(), counts.tolist()):
                target[int(volume_id)] = target.get(int(volume_id), 0) + int(count)
    return VolumeContents(files_per_volume=files, directories_per_volume=dirs)


@dataclass(frozen=True)
class VolumeTypeDistribution:
    """UDF / shared volumes per user (Fig. 11)."""

    udf_volumes_per_user: dict[int, int]
    shared_volumes_per_user: dict[int, int]
    total_users: int

    def share_with_udf(self) -> float:
        """Fraction of users with at least one UDF volume (paper: 58 %)."""
        with_udf = sum(1 for count in self.udf_volumes_per_user.values() if count > 0)
        return with_udf / self.total_users if self.total_users else 0.0

    def share_with_shared(self) -> float:
        """Fraction of users with at least one shared volume (paper: 1.8 %)."""
        with_shared = sum(1 for count in self.shared_volumes_per_user.values() if count > 0)
        return with_shared / self.total_users if self.total_users else 0.0

    def udf_cdf(self) -> EmpiricalCDF:
        """CDF of UDF volumes per user (over all users, zeros included)."""
        values = [self.udf_volumes_per_user.get(u, 0)
                  for u in range(self.total_users)]
        counts = list(self.udf_volumes_per_user.values())
        counts += [0] * max(0, self.total_users - len(self.udf_volumes_per_user))
        return EmpiricalCDF(counts if counts else values)


def volume_type_distribution(dataset: TraceDataset,
                             include_attacks: bool = False) -> VolumeTypeDistribution:
    """Count distinct UDF/shared volumes referenced per user (Fig. 11)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: deduplicate (user, volume) pairs per class with one
    # np.unique over a fused key, then count distinct volumes per user.
    volume_ids = source.storage_column("volume_id")
    users = source.storage_column("user_id")
    types = source.storage_column("volume_type")
    ops = source.storage_column("operation")
    has_volume = volume_ids != 0
    udf_mask = has_volume & ((types == VOLUME_TYPE_CODE[VolumeType.UDF])
                             | (ops == OPERATION_CODE[ApiOperation.CREATE_UDF]))
    shared_mask = has_volume & ~udf_mask \
        & (types == VOLUME_TYPE_CODE[VolumeType.SHARED])

    def distinct_per_user(mask: np.ndarray) -> dict[int, int]:
        if not mask.any():
            return {}
        pairs = np.unique(np.stack([users[mask], volume_ids[mask]], axis=1),
                          axis=0)
        distinct_users, counts = np.unique(pairs[:, 0], return_counts=True)
        return {int(u): int(c)
                for u, c in zip(distinct_users.tolist(), counts.tolist())}

    return VolumeTypeDistribution(
        udf_volumes_per_user=distinct_per_user(udf_mask),
        shared_volumes_per_user=distinct_per_user(shared_mask),
        total_users=len(source.user_ids()),
    )
