"""The user-centric request transition graph (Section 6.2, Fig. 8).

Fig. 8 aggregates, per user, the sequence of API operations issued by the
desktop client and draws the transition graph: nodes are operations, edges
are transitions with their global probabilities.  The striking structure is
that transfers repeat (after a transfer the most likely next operation is
another transfer — directory-level synchronisation and repeated file edits),
Make and Upload interleave, and the Authenticate → ListVolumes → ListShares
flow marks session initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import ApiOperation

__all__ = ["TransitionGraph", "build_transition_graph"]


@dataclass(frozen=True)
class TransitionGraph:
    """Operation-transition statistics and the resulting directed graph."""

    counts: dict[tuple[ApiOperation, ApiOperation], int]
    total_transitions: int

    def probability(self, source: ApiOperation, target: ApiOperation) -> float:
        """Global probability of the (source → target) transition."""
        if self.total_transitions == 0:
            return 0.0
        return self.counts.get((source, target), 0) / self.total_transitions

    def conditional_probability(self, source: ApiOperation,
                                target: ApiOperation) -> float:
        """Probability of ``target`` given the previous operation ``source``."""
        out_edges = [(pair, count) for pair, count in self.counts.items()
                     if pair[0] is source]
        total = sum(count for _, count in out_edges)
        if total == 0:
            return 0.0
        return self.counts.get((source, target), 0) / total

    def top_transitions(self, n: int = 10) -> list[tuple[ApiOperation, ApiOperation, float]]:
        """The ``n`` most frequent transitions with global probabilities."""
        ordered = sorted(self.counts.items(), key=lambda item: item[1], reverse=True)
        return [(src, dst, count / self.total_transitions)
                for (src, dst), count in ordered[:n]]

    def repeat_probability(self, operation: ApiOperation) -> float:
        """Conditional probability that ``operation`` is followed by itself."""
        return self.conditional_probability(operation, operation)

    def transfer_repeat_probability(self) -> float:
        """P(next op is a transfer | current op is a transfer).

        The paper highlights that after a transfer the next operation is very
        likely another transfer.
        """
        transfers = (ApiOperation.UPLOAD, ApiOperation.DOWNLOAD)
        numerator = sum(self.counts.get((a, b), 0) for a in transfers for b in transfers)
        denominator = sum(count for (a, _), count in self.counts.items() if a in transfers)
        return numerator / denominator if denominator else 0.0

    def to_networkx(self, min_probability: float = 0.0) -> nx.DiGraph:
        """Build a :class:`networkx.DiGraph` with probability-weighted edges."""
        graph = nx.DiGraph()
        for (source, target), count in self.counts.items():
            probability = count / self.total_transitions if self.total_transitions else 0.0
            if probability < min_probability:
                continue
            graph.add_edge(source.value, target.value,
                           weight=probability, count=count)
        return graph


def build_transition_graph(dataset: TraceDataset,
                           include_attacks: bool = False,
                           per_session: bool = False) -> TransitionGraph:
    """Aggregate per-user operation sequences into the Fig. 8 graph.

    With ``per_session=True`` transitions are only counted within a session
    (the sequence restarts at every new session), which is closer to how a
    desktop client behaves; the default aggregates per user across sessions
    exactly like the figure ("user-centric").
    """
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: order records by (group key, timestamp), pair each
    # record with its successor inside the same group, and count the
    # (previous op, next op) code pairs in one bincount.
    key_column = "session_id" if per_session else "user_id"
    keys = source.storage_column(key_column)
    if keys.size < 2:
        return TransitionGraph(counts={}, total_transitions=0)
    timestamps = source.storage_column("timestamp")
    op_codes = source.storage_column("operation").astype(np.int64)
    order = np.lexsort((timestamps, keys))
    keys_sorted = keys[order]
    ops_sorted = op_codes[order]
    same_group = keys_sorted[1:] == keys_sorted[:-1]
    n_ops = len(ApiOperation)
    pair_codes = ops_sorted[:-1][same_group] * n_ops + ops_sorted[1:][same_group]
    pair_counts = np.bincount(pair_codes, minlength=n_ops * n_ops)
    operations = list(ApiOperation)
    counts: dict[tuple[ApiOperation, ApiOperation], int] = {}
    for code in np.flatnonzero(pair_counts).tolist():
        counts[(operations[code // n_ops], operations[code % n_ops])] = \
            int(pair_counts[code])
    return TransitionGraph(counts=counts, total_transitions=int(pair_counts.sum()))
