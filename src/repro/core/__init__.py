"""The U1 trace analyses — one module per figure/table of the paper.

Storage workload (Section 5)
    * :mod:`repro.core.storage_workload` — Fig. 2a/2b/2c (traffic time
      series, traffic vs file size, R/W ratio).
    * :mod:`repro.core.file_dependencies` — Fig. 3a/3b (X-after-Write and
      X-after-Read inter-operation times, downloads per file).
    * :mod:`repro.core.node_lifetime` — Fig. 3c (file/directory lifetimes).
    * :mod:`repro.core.deduplication` — Fig. 4a (duplicates per hash, dedup
      ratio).
    * :mod:`repro.core.file_types` — Fig. 4b/4c (per-extension sizes, file
      category shares).
    * :mod:`repro.core.anomaly` — Fig. 5 (DDoS detection).

User behaviour (Section 6)
    * :mod:`repro.core.user_activity` — Fig. 6 (online vs active users) and
      Fig. 7a (operation counts).
    * :mod:`repro.core.user_traffic` — Fig. 7b/7c (per-user traffic CDF,
      Lorenz/Gini) and the user-class breakdown.
    * :mod:`repro.core.request_graph` — Fig. 8 (operation transition graph).
    * :mod:`repro.core.burstiness` — Fig. 9 (power-law inter-operation
      times).
    * :mod:`repro.core.volumes` — Fig. 10/11 (volume contents, UDF/shared
      volumes).

Back-end performance (Section 7)
    * :mod:`repro.core.rpc_performance` — Fig. 12/13 (RPC service times).
    * :mod:`repro.core.load_balancing` — Fig. 14 (API server / shard load).
    * :mod:`repro.core.sessions` — Fig. 15/16 (authentication activity,
      session lengths, active vs cold sessions).

Summary tables
    * :mod:`repro.core.summary` — Table 3.
    * :mod:`repro.core.findings` — Table 1.
    * :mod:`repro.core.report` — run everything and render a text report.
"""

from repro.core import (  # noqa: F401
    anomaly,
    burstiness,
    deduplication,
    file_dependencies,
    file_types,
    findings,
    load_balancing,
    node_lifetime,
    report,
    request_graph,
    rpc_performance,
    sessions,
    storage_workload,
    summary,
    user_activity,
    user_traffic,
    volumes,
)

__all__ = [
    "anomaly",
    "burstiness",
    "deduplication",
    "file_dependencies",
    "file_types",
    "findings",
    "load_balancing",
    "node_lifetime",
    "report",
    "request_graph",
    "rpc_performance",
    "sessions",
    "storage_workload",
    "summary",
    "user_activity",
    "user_traffic",
    "volumes",
]
