"""File-based deduplication analysis (Section 5.3, Fig. 4a).

U1 applies file-level cross-user deduplication: the client sends the SHA-1 of
a file before uploading and the back-end links the new file to existing
content when possible.  The paper measures a deduplication ratio of 0.171
over the month (17 % of the files' data could be deduplicated) and shows that
the distribution of duplicates per content hash has a long tail: ~80 % of
contents have no duplicate at all while a few popular contents (songs)
account for a very large number of logical copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.stats import EmpiricalCDF

__all__ = ["DeduplicationAnalysis", "deduplication_analysis"]


@dataclass(frozen=True)
class DeduplicationAnalysis:
    """Deduplication ratios and the duplicates-per-hash distribution."""

    #: Number of upload operations per distinct content hash.
    copies_per_hash: np.ndarray
    #: Bytes of the first upload of each distinct hash (unique data).
    unique_bytes: int
    #: Total uploaded bytes across all uploads carrying a hash.
    total_bytes: int
    #: Total number of uploads carrying a content hash.
    total_files: int

    @property
    def unique_contents(self) -> int:
        """Number of distinct content hashes observed."""
        return int(self.copies_per_hash.size)

    @property
    def byte_dedup_ratio(self) -> float:
        """``1 - unique_bytes / total_bytes`` (the paper's dr, data-based)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes

    @property
    def file_dedup_ratio(self) -> float:
        """``1 - unique_files / total_files`` (count-based dr)."""
        if self.total_files == 0:
            return 0.0
        return 1.0 - self.unique_contents / self.total_files

    @property
    def fraction_without_duplicates(self) -> float:
        """Share of contents uploaded exactly once (paper: ~80 %)."""
        if self.copies_per_hash.size == 0:
            return 0.0
        return float(np.mean(self.copies_per_hash == 1))

    @property
    def max_copies(self) -> int:
        """Largest number of copies observed for a single content."""
        if self.copies_per_hash.size == 0:
            return 0
        return int(self.copies_per_hash.max())

    def copies_cdf(self) -> EmpiricalCDF:
        """CDF of the number of copies per content hash (Fig. 4a)."""
        if self.copies_per_hash.size == 0:
            raise ValueError("no hashed uploads observed")
        return EmpiricalCDF(self.copies_per_hash)

    def storage_saved_bytes(self) -> int:
        """Bytes that file-level deduplication avoids storing."""
        return self.total_bytes - self.unique_bytes


def deduplication_analysis(dataset: TraceDataset,
                           include_attacks: bool = False) -> DeduplicationAnalysis:
    """Compute the Fig. 4a deduplication analysis from upload records."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    copies: dict[str, int] = {}
    first_size: dict[str, int] = {}
    total_bytes = 0
    total_files = 0
    for record in source.uploads():
        if not record.content_hash:
            continue
        total_files += 1
        total_bytes += record.size_bytes
        copies[record.content_hash] = copies.get(record.content_hash, 0) + 1
        if record.content_hash not in first_size:
            first_size[record.content_hash] = record.size_bytes
    return DeduplicationAnalysis(
        copies_per_hash=np.asarray(sorted(copies.values()), dtype=float),
        unique_bytes=sum(first_size.values()),
        total_bytes=total_bytes,
        total_files=total_files,
    )
