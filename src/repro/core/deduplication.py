"""File-based deduplication analysis (Section 5.3, Fig. 4a).

U1 applies file-level cross-user deduplication: the client sends the SHA-1 of
a file before uploading and the back-end links the new file to existing
content when possible.  The paper measures a deduplication ratio of 0.171
over the month (17 % of the files' data could be deduplicated) and shows that
the distribution of duplicates per content hash has a long tail: ~80 % of
contents have no duplicate at all while a few popular contents (songs)
account for a very large number of logical copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.stats import EmpiricalCDF

__all__ = ["DeduplicationAnalysis", "deduplication_analysis"]


@dataclass(frozen=True)
class DeduplicationAnalysis:
    """Deduplication ratios and the duplicates-per-hash distribution."""

    #: Number of upload operations per distinct content hash.
    copies_per_hash: np.ndarray
    #: Bytes of the first upload of each distinct hash (unique data).
    unique_bytes: int
    #: Total uploaded bytes across all uploads carrying a hash.
    total_bytes: int
    #: Total number of uploads carrying a content hash.
    total_files: int

    @property
    def unique_contents(self) -> int:
        """Number of distinct content hashes observed."""
        return int(self.copies_per_hash.size)

    @property
    def byte_dedup_ratio(self) -> float:
        """``1 - unique_bytes / total_bytes`` (the paper's dr, data-based)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes

    @property
    def file_dedup_ratio(self) -> float:
        """``1 - unique_files / total_files`` (count-based dr)."""
        if self.total_files == 0:
            return 0.0
        return 1.0 - self.unique_contents / self.total_files

    @property
    def fraction_without_duplicates(self) -> float:
        """Share of contents uploaded exactly once (paper: ~80 %)."""
        if self.copies_per_hash.size == 0:
            return 0.0
        return float(np.mean(self.copies_per_hash == 1))

    @property
    def max_copies(self) -> int:
        """Largest number of copies observed for a single content."""
        if self.copies_per_hash.size == 0:
            return 0
        return int(self.copies_per_hash.max())

    def copies_cdf(self) -> EmpiricalCDF:
        """CDF of the number of copies per content hash (Fig. 4a)."""
        if self.copies_per_hash.size == 0:
            raise ValueError("no hashed uploads observed")
        return EmpiricalCDF(self.copies_per_hash)

    def storage_saved_bytes(self) -> int:
        """Bytes that file-level deduplication avoids storing."""
        return self.total_bytes - self.unique_bytes


def deduplication_analysis(dataset: TraceDataset,
                           include_attacks: bool = False) -> DeduplicationAnalysis:
    """Compute the Fig. 4a deduplication analysis from upload records."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: factorise the content hashes once, then count
    # copies per hash and take the size of each hash's first occurrence.
    hash_codes, hashes = source.storage_codes("content_hash")
    upload_mask = (source.storage_column("operation")
                   == OPERATION_CODE[ApiOperation.UPLOAD])
    has_hash = np.asarray([bool(h) for h in hashes], dtype=bool)
    mask = upload_mask & has_hash[hash_codes]
    codes = hash_codes[mask]
    sizes = source.storage_column("size_bytes")[mask]
    if codes.size == 0:
        return DeduplicationAnalysis(copies_per_hash=np.empty(0),
                                     unique_bytes=0, total_bytes=0,
                                     total_files=0)
    distinct, first_positions = np.unique(codes, return_index=True)
    copies = np.bincount(codes)[distinct]
    return DeduplicationAnalysis(
        copies_per_hash=np.sort(copies).astype(float),
        unique_bytes=int(sizes[first_positions].sum()),
        total_bytes=int(sizes.sum()),
        total_files=int(codes.size),
    )
