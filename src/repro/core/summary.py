"""Table 3: summary of the trace.

Thin wrapper around :mod:`repro.trace.stats` kept here so that every
table/figure of the paper has a module under :mod:`repro.core`.
"""

from __future__ import annotations

from repro.trace.dataset import TraceDataset
from repro.trace.stats import TraceSummary, summarize

__all__ = ["TraceSummary", "trace_summary", "format_table3"]


def trace_summary(dataset: TraceDataset) -> TraceSummary:
    """Compute the Table 3 rows for ``dataset``."""
    return summarize(dataset)


def format_table3(dataset: TraceDataset) -> str:
    """Render Table 3 as aligned text."""
    return str(trace_summary(dataset))
