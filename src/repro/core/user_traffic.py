"""Traffic distribution across users and user classes (Section 6.1, Fig. 7b/7c).

Key observations reproduced here:

* only 14 % of users downloaded data in the month and 25 % uploaded — a
  minority of users is responsible for the storage workload;
* the traffic distribution across active users is extremely unequal: the
  Lorenz curve is far from the diagonal, the Gini coefficient is ~0.9 and
  1 % of users account for ~65 % of the traffic;
* classifying users à la Drago et al. (occasional / upload-only /
  download-only / heavy) shows U1 is dominated by occasional users
  (85.8 %), unlike the campus-biased Dropbox population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation
from repro.util.inequality import gini_coefficient, lorenz_curve, top_share
from repro.util.stats import EmpiricalCDF
from repro.util.units import KB

__all__ = [
    "UserTraffic",
    "per_user_traffic",
    "TrafficInequality",
    "traffic_inequality",
    "UserClassBreakdown",
    "classify_users",
]


@dataclass(frozen=True)
class UserTraffic:
    """Upload/download bytes per user over the trace."""

    upload_bytes: dict[int, int]
    download_bytes: dict[int, int]
    all_users: int

    def users_who_uploaded(self) -> int:
        """Users with at least one uploaded byte."""
        return sum(1 for v in self.upload_bytes.values() if v > 0)

    def users_who_downloaded(self) -> int:
        """Users with at least one downloaded byte."""
        return sum(1 for v in self.download_bytes.values() if v > 0)

    def upload_share_of_users(self) -> float:
        """Fraction of all users who uploaded anything (paper: ~25 %)."""
        return self.users_who_uploaded() / self.all_users if self.all_users else 0.0

    def download_share_of_users(self) -> float:
        """Fraction of all users who downloaded anything (paper: ~14 %)."""
        return self.users_who_downloaded() / self.all_users if self.all_users else 0.0

    def total_traffic(self, user_id: int) -> int:
        """Upload + download bytes of one user."""
        return self.upload_bytes.get(user_id, 0) + self.download_bytes.get(user_id, 0)

    def traffic_values(self, kind: str = "total") -> np.ndarray:
        """Per-user traffic values (only users with non-zero traffic)."""
        if kind == "upload":
            values = [v for v in self.upload_bytes.values() if v > 0]
        elif kind == "download":
            values = [v for v in self.download_bytes.values() if v > 0]
        elif kind == "total":
            users = set(self.upload_bytes) | set(self.download_bytes)
            values = [self.total_traffic(u) for u in users]
            values = [v for v in values if v > 0]
        else:
            raise ValueError("kind must be 'upload', 'download' or 'total'")
        return np.asarray(values, dtype=float)

    def traffic_cdf(self, kind: str = "total") -> EmpiricalCDF:
        """CDF of per-user transferred data (Fig. 7b)."""
        values = self.traffic_values(kind)
        if values.size == 0:
            raise ValueError("no traffic observed")
        return EmpiricalCDF(values)


def per_user_traffic(dataset: TraceDataset,
                     include_attacks: bool = False) -> UserTraffic:
    """Aggregate upload/download bytes per user."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: per-user byte totals via unique + weighted bincount.
    op_codes = source.storage_column("operation")
    users = source.storage_column("user_id")
    sizes = source.storage_column("size_bytes")

    def totals(mask: np.ndarray) -> dict[int, int]:
        masked_users = users[mask]
        if masked_users.size == 0:
            return {}
        distinct, inverse = np.unique(masked_users, return_inverse=True)
        sums = np.bincount(inverse, weights=sizes[mask])
        return {int(uid): int(total)
                for uid, total in zip(distinct.tolist(), sums.tolist())}

    return UserTraffic(
        upload_bytes=totals(op_codes == OPERATION_CODE[ApiOperation.UPLOAD]),
        download_bytes=totals(op_codes == OPERATION_CODE[ApiOperation.DOWNLOAD]),
        all_users=len(source.user_ids()))


@dataclass(frozen=True)
class TrafficInequality:
    """Lorenz curve and Gini coefficient of per-user traffic (Fig. 7c)."""

    lorenz_population: np.ndarray
    lorenz_traffic: np.ndarray
    gini: float
    top_1_percent_share: float
    top_5_percent_share: float
    active_users: int


def traffic_inequality(dataset: TraceDataset, kind: str = "total",
                       include_attacks: bool = False) -> TrafficInequality:
    """Compute the Fig. 7c inequality indicators for per-user traffic."""
    traffic = per_user_traffic(dataset, include_attacks=include_attacks)
    values = traffic.traffic_values(kind)
    if values.size == 0:
        raise ValueError("no traffic observed")
    xs, ys = lorenz_curve(values)
    return TrafficInequality(
        lorenz_population=xs,
        lorenz_traffic=ys,
        gini=gini_coefficient(values),
        top_1_percent_share=top_share(values, 0.01),
        top_5_percent_share=top_share(values, 0.05),
        active_users=int(values.size),
    )


@dataclass(frozen=True)
class UserClassBreakdown:
    """Shares of the Drago et al. user classes (Section 6.1)."""

    occasional: float
    upload_only: float
    download_only: float
    heavy: float
    counts: dict[str, int]

    def as_dict(self) -> dict[str, float]:
        """Class shares keyed by class name."""
        return {
            "occasional": self.occasional,
            "upload_only": self.upload_only,
            "download_only": self.download_only,
            "heavy": self.heavy,
        }


def classify_users(dataset: TraceDataset, occasional_threshold: int = 10 * KB,
                   ratio_orders_of_magnitude: float = 3.0,
                   include_attacks: bool = False) -> UserClassBreakdown:
    """Classify every user following Drago et al. (as used in Section 6.1).

    A user is *occasional* when they transferred less than 10 KB in total;
    *upload-only* / *download-only* when one direction exceeds the other by
    more than three orders of magnitude; *heavy* otherwise.
    """
    traffic = per_user_traffic(dataset, include_attacks=include_attacks)
    counts = {"occasional": 0, "upload_only": 0, "download_only": 0, "heavy": 0}
    ratio_threshold = 10.0 ** ratio_orders_of_magnitude
    all_users = dataset.user_ids() if include_attacks else \
        dataset.without_attack_traffic().user_ids()
    for user_id in all_users:
        up = traffic.upload_bytes.get(user_id, 0)
        down = traffic.download_bytes.get(user_id, 0)
        total = up + down
        if total < occasional_threshold:
            counts["occasional"] += 1
        elif down == 0 or (down > 0 and up / max(down, 1) >= ratio_threshold):
            counts["upload_only"] += 1
        elif up == 0 or (up > 0 and down / max(up, 1) >= ratio_threshold):
            counts["download_only"] += 1
        else:
            counts["heavy"] += 1
    total_users = sum(counts.values()) or 1
    return UserClassBreakdown(
        occasional=counts["occasional"] / total_users,
        upload_only=counts["upload_only"] / total_users,
        download_only=counts["download_only"] / total_users,
        heavy=counts["heavy"] / total_users,
        counts=counts,
    )
