"""Load balancing across API servers and metadata shards (Section 7.2, Fig. 14).

The paper groups the processed API operations by physical machine (per hour)
and the RPC calls by metadata shard (per minute) and finds that, in short or
moderate windows, the load is far from evenly balanced: the standard
deviation across servers/shards is large relative to the mean, because user
load is uneven, operation costs are asymmetric and users behave in bursts.
Over the whole trace the imbalance largely disappears (the standard
deviation across shards is only ~4.9 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.timebin import TimeBinner
from repro.util.units import HOUR, MINUTE

__all__ = ["LoadBalanceSeries", "api_server_load", "shard_load"]


@dataclass(frozen=True)
class LoadBalanceSeries:
    """Per-bin request counts for a set of servers/shards (Fig. 14)."""

    entities: tuple[str, ...]
    bin_edges: np.ndarray
    #: Matrix of shape (n_entities, n_bins): requests per entity per bin.
    counts: np.ndarray
    bin_width: float

    @property
    def n_entities(self) -> int:
        """Number of servers or shards."""
        return len(self.entities)

    def mean_per_bin(self) -> np.ndarray:
        """Mean load across entities, per bin."""
        return self.counts.mean(axis=0)

    def std_per_bin(self) -> np.ndarray:
        """Standard deviation of the load across entities, per bin."""
        return self.counts.std(axis=0)

    def coefficient_of_variation_per_bin(self) -> np.ndarray:
        """Std/mean across entities per bin (NaN-free; 0 where mean is 0)."""
        mean = self.mean_per_bin()
        std = self.std_per_bin()
        cv = np.zeros_like(mean)
        mask = mean > 0
        cv[mask] = std[mask] / mean[mask]
        return cv

    def short_window_imbalance(self) -> float:
        """Mean coefficient of variation over non-empty bins."""
        cv = self.coefficient_of_variation_per_bin()
        busy = self.mean_per_bin() > 0
        if not np.any(busy):
            return 0.0
        return float(cv[busy].mean())

    def long_term_imbalance(self) -> float:
        """Coefficient of variation of the whole-trace totals per entity.

        The paper reports ~4.9 % across shards when the whole trace is taken.
        """
        totals = self.counts.sum(axis=1)
        mean = totals.mean()
        if mean == 0:
            return 0.0
        return float(totals.std() / mean)


def _build_series(entities: list[str], timestamps: np.ndarray,
                  rows: np.ndarray, start: float, end: float,
                  bin_width: float) -> LoadBalanceSeries:
    """Vectorised (entity x bin) histogram.

    ``rows`` holds, per event, the row index of its entity in ``entities``
    (or -1 for entities not configured); the (row, bin) pairs are counted in
    one ``np.bincount`` over a flattened index.
    """
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    n_bins = binner.n_bins
    in_range = (timestamps >= binner.start) & (timestamps < binner.end)
    bin_idx = ((timestamps[in_range] - binner.start) // bin_width).astype(np.intp)
    rows = rows[in_range]
    known = rows >= 0
    flat = rows[known].astype(np.intp) * n_bins + bin_idx[known]
    counts = np.bincount(flat, minlength=len(entities) * n_bins) \
        .reshape(len(entities), n_bins).astype(float)
    return LoadBalanceSeries(entities=tuple(entities), bin_edges=binner.edges(),
                             counts=counts, bin_width=bin_width)


def api_server_load(dataset: TraceDataset, bin_width: float = HOUR,
                    by_machine: bool = True,
                    include_attacks: bool = True) -> LoadBalanceSeries:
    """Requests per API server (physical machine) per hour (Fig. 14, top)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    timestamps = np.concatenate([source.storage_column("timestamp"),
                                 source.session_column("timestamp")])
    storage_codes, storage_cats = source.storage_codes("server")
    session_codes, session_cats = source.session_codes("server")
    if by_machine:
        labels_per_stream = [list(storage_cats), list(session_cats)]
        code_arrays = [storage_codes, session_codes]
    else:
        # Entity = server/process: fold the (small) process number into the
        # factorised server code, then keep only the combinations actually
        # observed (the cross product would fabricate zero-count entities).
        labels_per_stream = []
        code_arrays = []
        for stream_codes, cats, processes in (
                (storage_codes, storage_cats, source.storage_column("process")),
                (session_codes, session_cats, source.session_column("process"))):
            n_proc = int(processes.max()) + 1 if processes.size else 1
            combined = stream_codes.astype(np.int64) * n_proc + processes
            observed, inverse = np.unique(combined, return_inverse=True)
            labels_per_stream.append(
                [f"{cats[code // n_proc]}/{code % n_proc}"
                 for code in observed.tolist()])
            code_arrays.append(inverse)
    # Merge the two streams' code spaces into one entity list.
    entity_index: dict[str, int] = {}
    remapped = []
    for cats, codes in zip(labels_per_stream, code_arrays):
        row_of = np.empty(len(cats), dtype=np.intp)
        for i, label in enumerate(cats):
            row_of[i] = entity_index.setdefault(label, len(entity_index))
        remapped.append(row_of[codes])
    rows = np.concatenate(remapped) if remapped else np.empty(0, dtype=np.intp)
    ordered = sorted(entity_index)
    reorder = np.empty(len(entity_index), dtype=np.intp)
    for new_row, label in enumerate(ordered):
        reorder[entity_index[label]] = new_row
    return _build_series(ordered, timestamps, reorder[rows], start, end, bin_width)


def shard_load(dataset: TraceDataset, bin_width: float = MINUTE,
               n_shards: int | None = None,
               include_attacks: bool = True) -> LoadBalanceSeries:
    """RPC calls per metadata shard per minute (Fig. 14, bottom)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    shard_ids = source.rpc_column("shard_id")
    timestamps = source.rpc_column("timestamp")
    if shard_ids.size == 0 and n_shards is None:
        raise ValueError("no RPC records in the dataset; run the back-end "
                         "simulator to obtain shard-level load")
    max_shard = int(shard_ids.max()) if shard_ids.size else -1
    if n_shards is not None:
        entities = [f"shard-{i}" for i in range(n_shards)]
        rows = np.where(shard_ids < n_shards, shard_ids, -1)
    else:
        present = np.unique(shard_ids)
        labels = [f"shard-{i}" for i in present.tolist()]
        order = sorted(range(len(labels)), key=lambda i: labels[i])
        entities = [labels[i] for i in order]
        row_of = np.full(max_shard + 1, -1, dtype=np.intp)
        for row, idx in enumerate(order):
            row_of[present[idx]] = row
        rows = row_of[shard_ids]
    return _build_series(entities, timestamps, rows, start, end, bin_width)
