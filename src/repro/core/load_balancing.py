"""Load balancing across API servers and metadata shards (Section 7.2, Fig. 14).

The paper groups the processed API operations by physical machine (per hour)
and the RPC calls by metadata shard (per minute) and finds that, in short or
moderate windows, the load is far from evenly balanced: the standard
deviation across servers/shards is large relative to the mean, because user
load is uneven, operation costs are asymmetric and users behave in bursts.
Over the whole trace the imbalance largely disappears (the standard
deviation across shards is only ~4.9 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.timebin import TimeBinner
from repro.util.units import HOUR, MINUTE

__all__ = ["LoadBalanceSeries", "api_server_load", "shard_load"]


@dataclass(frozen=True)
class LoadBalanceSeries:
    """Per-bin request counts for a set of servers/shards (Fig. 14)."""

    entities: tuple[str, ...]
    bin_edges: np.ndarray
    #: Matrix of shape (n_entities, n_bins): requests per entity per bin.
    counts: np.ndarray
    bin_width: float

    @property
    def n_entities(self) -> int:
        """Number of servers or shards."""
        return len(self.entities)

    def mean_per_bin(self) -> np.ndarray:
        """Mean load across entities, per bin."""
        return self.counts.mean(axis=0)

    def std_per_bin(self) -> np.ndarray:
        """Standard deviation of the load across entities, per bin."""
        return self.counts.std(axis=0)

    def coefficient_of_variation_per_bin(self) -> np.ndarray:
        """Std/mean across entities per bin (NaN-free; 0 where mean is 0)."""
        mean = self.mean_per_bin()
        std = self.std_per_bin()
        cv = np.zeros_like(mean)
        mask = mean > 0
        cv[mask] = std[mask] / mean[mask]
        return cv

    def short_window_imbalance(self) -> float:
        """Mean coefficient of variation over non-empty bins."""
        cv = self.coefficient_of_variation_per_bin()
        busy = self.mean_per_bin() > 0
        if not np.any(busy):
            return 0.0
        return float(cv[busy].mean())

    def long_term_imbalance(self) -> float:
        """Coefficient of variation of the whole-trace totals per entity.

        The paper reports ~4.9 % across shards when the whole trace is taken.
        """
        totals = self.counts.sum(axis=1)
        mean = totals.mean()
        if mean == 0:
            return 0.0
        return float(totals.std() / mean)


def _build_series(entities: list[str], events: list[tuple[float, str]],
                  start: float, end: float, bin_width: float) -> LoadBalanceSeries:
    binner = TimeBinner(start=start, end=end + bin_width, width=bin_width)
    index = {entity: i for i, entity in enumerate(entities)}
    counts = np.zeros((len(entities), binner.n_bins))
    for timestamp, entity in events:
        bin_idx = binner.index_of(timestamp)
        if bin_idx is not None and entity in index:
            counts[index[entity], bin_idx] += 1
    return LoadBalanceSeries(entities=tuple(entities), bin_edges=binner.edges(),
                             counts=counts, bin_width=bin_width)


def api_server_load(dataset: TraceDataset, bin_width: float = HOUR,
                    by_machine: bool = True,
                    include_attacks: bool = True) -> LoadBalanceSeries:
    """Requests per API server (physical machine) per hour (Fig. 14, top)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    events = []
    for record in source.storage:
        entity = record.server if by_machine else f"{record.server}/{record.process}"
        events.append((record.timestamp, entity))
    for record in source.sessions:
        entity = record.server if by_machine else f"{record.server}/{record.process}"
        events.append((record.timestamp, entity))
    entities = sorted({entity for _, entity in events})
    return _build_series(entities, events, start, end, bin_width)


def shard_load(dataset: TraceDataset, bin_width: float = MINUTE,
               n_shards: int | None = None,
               include_attacks: bool = True) -> LoadBalanceSeries:
    """RPC calls per metadata shard per minute (Fig. 14, bottom)."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    start, end = dataset.time_span()
    events = [(record.timestamp, f"shard-{record.shard_id}") for record in source.rpc]
    if n_shards is not None:
        entities = [f"shard-{i}" for i in range(n_shards)]
    else:
        entities = sorted({entity for _, entity in events})
    if not entities:
        raise ValueError("no RPC records in the dataset; run the back-end "
                         "simulator to obtain shard-level load")
    return _build_series(entities, events, start, end, bin_width)
