"""Node (file/directory) lifetimes (Section 5.2, Fig. 3c).

The paper measures the time between the creation of a node and its deletion
within the trace: 28.9 % of new files and 31.5 % of new directories are
deleted within the month, and a large fraction die within hours of creation
(17.1 % of files and 12.9 % of directories within 8 hours) — in line with
file lifetimes in local file systems (Agrawal et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import NODE_KIND_CODE, OPERATION_CODE, TraceDataset
from repro.trace.records import ApiOperation, NodeKind
from repro.util.stats import EmpiricalCDF
from repro.util.units import HOUR

__all__ = ["LifetimeAnalysis", "node_lifetimes"]

_CREATION_OPS = (ApiOperation.MAKE, ApiOperation.UPLOAD)


@dataclass(frozen=True)
class LifetimeAnalysis:
    """Observed lifetimes of nodes created during the trace."""

    file_lifetimes: np.ndarray
    directory_lifetimes: np.ndarray
    files_created: int
    directories_created: int

    @property
    def files_deleted(self) -> int:
        """Files created during the trace that were also deleted in it."""
        return int(self.file_lifetimes.size)

    @property
    def directories_deleted(self) -> int:
        """Directories created during the trace that were also deleted in it."""
        return int(self.directory_lifetimes.size)

    def deleted_fraction(self, kind: NodeKind) -> float:
        """Fraction of created nodes deleted within the trace window."""
        if kind is NodeKind.FILE:
            return self.files_deleted / self.files_created if self.files_created else 0.0
        return (self.directories_deleted / self.directories_created
                if self.directories_created else 0.0)

    def deleted_within(self, kind: NodeKind, seconds: float) -> float:
        """Fraction of created nodes deleted within ``seconds`` of creation."""
        created = self.files_created if kind is NodeKind.FILE else self.directories_created
        lifetimes = (self.file_lifetimes if kind is NodeKind.FILE
                     else self.directory_lifetimes)
        if created == 0:
            return 0.0
        return float(np.sum(lifetimes <= seconds)) / created

    def short_lived_share(self, kind: NodeKind) -> float:
        """Fraction of nodes deleted within 8 hours (paper: 17.1 % / 12.9 %)."""
        return self.deleted_within(kind, 8 * HOUR)

    def lifetime_cdf(self, kind: NodeKind) -> EmpiricalCDF:
        """Empirical CDF of observed lifetimes of deleted nodes."""
        lifetimes = (self.file_lifetimes if kind is NodeKind.FILE
                     else self.directory_lifetimes)
        if lifetimes.size == 0:
            raise ValueError(f"no deleted {kind.value} nodes observed")
        return EmpiricalCDF(lifetimes)


def node_lifetimes(dataset: TraceDataset,
                   include_attacks: bool = False) -> LifetimeAnalysis:
    """Compute Fig. 3c lifetimes of nodes created during the trace."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    # Columnar fast path: order the node-bearing records by (node, time) and
    # reduce each node segment with np.minimum.reduceat — first creation, and
    # first unlink at or after the creation time.
    node_col = source.storage_column("node_id")
    mask = node_col != 0
    nodes = node_col[mask]
    if nodes.size == 0:
        return LifetimeAnalysis(file_lifetimes=np.empty(0),
                                directory_lifetimes=np.empty(0),
                                files_created=0, directories_created=0)
    timestamps = source.storage_column("timestamp")[mask]
    op_codes = source.storage_column("operation")[mask]
    kind_codes = source.storage_column("node_kind")[mask]
    order = np.lexsort((timestamps, nodes))
    nodes = nodes[order]
    timestamps = timestamps[order]
    op_codes = op_codes[order]
    kind_codes = kind_codes[order]

    n = nodes.size
    starts = np.flatnonzero(np.concatenate(([True], nodes[1:] != nodes[:-1])))
    lengths = np.diff(np.concatenate((starts, [n])))
    positions = np.arange(n)

    creation_mask = np.isin(op_codes,
                            [OPERATION_CODE[op] for op in _CREATION_OPS])
    first_creation = np.minimum.reduceat(np.where(creation_mask, positions, n),
                                         starts)
    created = first_creation < n  # node has an in-trace creation
    creation_pos = first_creation[created]
    creation_ts_by_node = timestamps[creation_pos]
    is_dir = (kind_codes[creation_pos]
              == NODE_KIND_CODE[NodeKind.DIRECTORY])
    files_created = int(np.sum(~is_dir))
    dirs_created = int(np.sum(is_dir))

    # Broadcast each node's creation time over its segment and find the
    # first unlink whose timestamp is >= it (scanning in group order, like
    # the historical per-record implementation).
    creation_ts_full = np.repeat(
        np.where(created, timestamps[np.minimum(first_creation, n - 1)], np.inf),
        lengths)
    unlink_mask = (op_codes == OPERATION_CODE[ApiOperation.UNLINK]) \
        & (timestamps >= creation_ts_full)
    first_unlink = np.minimum.reduceat(np.where(unlink_mask, positions, n),
                                       starts)
    deleted = created & (first_unlink < n)
    lifetimes = (timestamps[np.minimum(first_unlink, n - 1)]
                 - timestamps[np.minimum(first_creation, n - 1)])[deleted]
    deleted_is_dir = is_dir[deleted[created]]
    return LifetimeAnalysis(
        file_lifetimes=lifetimes[~deleted_is_dir].astype(float),
        directory_lifetimes=lifetimes[deleted_is_dir].astype(float),
        files_created=files_created,
        directories_created=dirs_created,
    )
