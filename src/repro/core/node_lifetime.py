"""Node (file/directory) lifetimes (Section 5.2, Fig. 3c).

The paper measures the time between the creation of a node and its deletion
within the trace: 28.9 % of new files and 31.5 % of new directories are
deleted within the month, and a large fraction die within hours of creation
(17.1 % of files and 12.9 % of directories within 8 hours) — in line with
file lifetimes in local file systems (Agrawal et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import ApiOperation, NodeKind
from repro.util.stats import EmpiricalCDF
from repro.util.units import HOUR

__all__ = ["LifetimeAnalysis", "node_lifetimes"]

_CREATION_OPS = (ApiOperation.MAKE, ApiOperation.UPLOAD)


@dataclass(frozen=True)
class LifetimeAnalysis:
    """Observed lifetimes of nodes created during the trace."""

    file_lifetimes: np.ndarray
    directory_lifetimes: np.ndarray
    files_created: int
    directories_created: int

    @property
    def files_deleted(self) -> int:
        """Files created during the trace that were also deleted in it."""
        return int(self.file_lifetimes.size)

    @property
    def directories_deleted(self) -> int:
        """Directories created during the trace that were also deleted in it."""
        return int(self.directory_lifetimes.size)

    def deleted_fraction(self, kind: NodeKind) -> float:
        """Fraction of created nodes deleted within the trace window."""
        if kind is NodeKind.FILE:
            return self.files_deleted / self.files_created if self.files_created else 0.0
        return (self.directories_deleted / self.directories_created
                if self.directories_created else 0.0)

    def deleted_within(self, kind: NodeKind, seconds: float) -> float:
        """Fraction of created nodes deleted within ``seconds`` of creation."""
        created = self.files_created if kind is NodeKind.FILE else self.directories_created
        lifetimes = (self.file_lifetimes if kind is NodeKind.FILE
                     else self.directory_lifetimes)
        if created == 0:
            return 0.0
        return float(np.sum(lifetimes <= seconds)) / created

    def short_lived_share(self, kind: NodeKind) -> float:
        """Fraction of nodes deleted within 8 hours (paper: 17.1 % / 12.9 %)."""
        return self.deleted_within(kind, 8 * HOUR)

    def lifetime_cdf(self, kind: NodeKind) -> EmpiricalCDF:
        """Empirical CDF of observed lifetimes of deleted nodes."""
        lifetimes = (self.file_lifetimes if kind is NodeKind.FILE
                     else self.directory_lifetimes)
        if lifetimes.size == 0:
            raise ValueError(f"no deleted {kind.value} nodes observed")
        return EmpiricalCDF(lifetimes)


def node_lifetimes(dataset: TraceDataset,
                   include_attacks: bool = False) -> LifetimeAnalysis:
    """Compute Fig. 3c lifetimes of nodes created during the trace."""
    source = dataset if include_attacks else dataset.without_attack_traffic()
    file_lifetimes: list[float] = []
    dir_lifetimes: list[float] = []
    files_created = 0
    dirs_created = 0
    for records in source.storage_by_node().values():
        creation = next((r for r in records if r.operation in _CREATION_OPS), None)
        if creation is None:
            continue
        is_dir = creation.node_kind is NodeKind.DIRECTORY
        if is_dir:
            dirs_created += 1
        else:
            files_created += 1
        deletion = next((r for r in records
                         if r.operation is ApiOperation.UNLINK
                         and r.timestamp >= creation.timestamp), None)
        if deletion is None:
            continue
        lifetime = deletion.timestamp - creation.timestamp
        if is_dir:
            dir_lifetimes.append(lifetime)
        else:
            file_lifetimes.append(lifetime)
    return LifetimeAnalysis(
        file_lifetimes=np.asarray(file_lifetimes, dtype=float),
        directory_lifetimes=np.asarray(dir_lifetimes, dtype=float),
        files_created=files_created,
        directories_created=dirs_created,
    )
