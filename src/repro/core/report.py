"""Full-report runner: every analysis of the paper in one call.

:func:`full_report` runs the complete analysis pipeline on a dataset and
returns a dictionary of results keyed by experiment id (table/figure number);
:func:`format_report` renders it as readable text.  The examples and the
EXPERIMENTS.md regeneration script are thin wrappers around these functions.
"""

from __future__ import annotations

from typing import Any

from repro.core import (
    anomaly,
    burstiness,
    deduplication,
    file_dependencies,
    file_types,
    findings,
    load_balancing,
    node_lifetime,
    request_graph,
    rpc_performance,
    sessions,
    storage_workload,
    summary,
    user_activity,
    user_traffic,
    volumes,
)
from repro.trace.dataset import TraceDataset
from repro.trace.records import ApiOperation, NodeKind
from repro.util.units import DAY, HOUR, MB, format_bytes
from repro.whatif.economics import storage_economics

__all__ = ["full_report", "format_report"]


def full_report(dataset: TraceDataset) -> dict[str, Any]:
    """Run every analysis and key the results by table/figure id."""
    report: dict[str, Any] = {}
    report["table3"] = summary.trace_summary(dataset)
    report["fig2a"] = storage_workload.traffic_timeseries(dataset)
    report["fig2b"] = storage_workload.traffic_by_size_category(dataset)
    try:
        report["fig2c"] = storage_workload.rw_ratio_analysis(dataset)
    except ValueError:
        # Very small traces may not contain enough busy hours.
        report["fig2c"] = None
    report["updates"] = storage_workload.update_traffic_share(dataset)
    report["fig3ab"] = file_dependencies.file_dependencies(dataset)
    report["fig3b_downloads"] = file_dependencies.downloads_per_file(dataset)
    report["fig3c"] = node_lifetime.node_lifetimes(dataset)
    report["fig4a"] = deduplication.deduplication_analysis(dataset)
    report["fig4b"] = file_types.file_size_analysis(dataset)
    report["fig4c"] = file_types.category_shares(dataset)
    report["fig5"] = anomaly.detect_anomalies(dataset, family="session")
    report["fig6"] = user_activity.online_active_users(dataset)
    report["fig7a"] = user_activity.operation_counts(dataset)
    report["fig7b"] = user_traffic.per_user_traffic(dataset)
    try:
        report["fig7c"] = user_traffic.traffic_inequality(dataset)
    except ValueError:
        # Tiny traces may contain no legitimate transfer traffic at all.
        report["fig7c"] = None
    report["user_classes"] = user_traffic.classify_users(dataset)
    report["fig8"] = request_graph.build_transition_graph(dataset)
    try:
        report["fig9_upload"] = burstiness.burstiness_analysis(dataset, ApiOperation.UPLOAD)
        report["fig9_unlink"] = burstiness.burstiness_analysis(dataset, ApiOperation.UNLINK)
    except ValueError:
        report["fig9_upload"] = None
        report["fig9_unlink"] = None
    report["fig10"] = volumes.volume_contents(dataset)
    report["fig11"] = volumes.volume_type_distribution(dataset)
    if dataset.rpc:
        report["fig12"] = rpc_performance.rpc_service_times(dataset)
        report["fig13"] = rpc_performance.rpc_scatter(dataset)
        report["fig14_api"] = load_balancing.api_server_load(dataset)
        report["fig14_shards"] = load_balancing.shard_load(dataset)
    report["fig15"] = sessions.auth_activity(dataset)
    report["fig16"] = sessions.session_analysis(dataset)
    report["economics"] = storage_economics(dataset)
    report["table1"] = findings.compute_findings(dataset, precomputed=report)
    return report


def format_report(dataset: TraceDataset) -> str:
    """Render a human-readable summary of every analysis."""
    results = full_report(dataset)
    lines: list[str] = []
    lines.append("=" * 72)
    lines.append("UbuntuOne back-end trace analysis (reproduction)")
    lines.append("=" * 72)

    lines.append("\n-- Table 3: trace summary " + "-" * 40)
    lines.append(str(results["table3"]))

    fig2c = results["fig2c"]
    updates = results["updates"]
    lines.append("\n-- Section 5.1: storage workload " + "-" * 33)
    if fig2c is not None:
        lines.append(f"Median hourly R/W ratio: {fig2c.median:.2f} (paper: 1.14)")
    lines.append(f"Upload ops that are updates: {updates.operation_share:.1%} "
                 f"(paper: 10.1%); bytes: {updates.traffic_share:.1%} (paper: 18.5%)")

    fig4a = results["fig4a"]
    fig4b = results["fig4b"]
    lines.append(f"Files < 1 MB: {fig4b.fraction_below(1 * MB):.1%} (paper: 90%)")
    lines.append(f"Dedup ratio: {fig4a.byte_dedup_ratio:.3f} (paper: 0.171); "
                 f"contents without duplicates: {fig4a.fraction_without_duplicates:.1%}")

    fig3c = results["fig3c"]
    lines.append(f"Files deleted within 8h of creation: "
                 f"{fig3c.short_lived_share(NodeKind.FILE):.1%} (paper: 17.1%)")

    attacks = results["fig5"]
    lines.append(f"DDoS-like anomaly windows detected: {len(attacks)} (paper: 3)")

    lines.append("\n-- Section 6: user behaviour " + "-" * 37)
    fig6 = results["fig6"]
    low, high = fig6.active_share_range()
    lines.append(f"Active/online user share per hour: {low:.1%} - {high:.1%} "
                 f"(paper: 3.5% - 16.3%)")
    fig7c = results["fig7c"]
    if fig7c is not None:
        lines.append(f"Gini of per-user traffic: {fig7c.gini:.3f} (paper: ~0.895); "
                     f"top 1% share: {fig7c.top_1_percent_share:.1%} (paper: 65.6%)")
    classes = results["user_classes"]
    lines.append("User classes: "
                 f"occasional {classes.occasional:.1%}, upload-only {classes.upload_only:.1%}, "
                 f"download-only {classes.download_only:.1%}, heavy {classes.heavy:.1%}")
    fig8 = results["fig8"]
    lines.append(f"P(transfer follows transfer): {fig8.transfer_repeat_probability():.2f}")
    if results["fig9_upload"] is not None:
        lines.append(f"Upload inter-op power-law alpha: {results['fig9_upload'].alpha:.2f} "
                     f"(paper: 1.54); Unlink alpha: {results['fig9_unlink'].alpha:.2f} "
                     f"(paper: 1.44)")

    lines.append("\n-- Section 7: back-end performance " + "-" * 31)
    if "fig12" in results:
        fig13 = results["fig13"]
        ranges = rpc_performance.class_median_ranges(fig13)
        for rpc_class, (low_t, high_t) in sorted(ranges.items(), key=lambda kv: kv[1][0]):
            lines.append(f"  {rpc_class.value:<8} median service times: "
                         f"{low_t * 1000:.1f} - {high_t * 1000:.1f} ms")
        fig14 = results["fig14_shards"]
        lines.append(f"Shard load: short-window CV {fig14.short_window_imbalance():.2f}, "
                     f"whole-trace CV {fig14.long_term_imbalance():.3f} (paper: 0.049)")
    fig16 = results["fig16"]
    lines.append(f"Sessions < 8h: {fig16.share_shorter_than(8 * HOUR):.1%} (paper: 97%); "
                 f"< 1s: {fig16.share_shorter_than(1.0):.1%} (paper: 32%)")
    lines.append(f"Active sessions: {fig16.active_share:.1%} (paper: 5.57%); "
                 f"top-20% active sessions hold {fig16.top_sessions_share(0.2):.1%} of ops "
                 f"(paper: 96.7%)")

    economics = results["economics"]
    lines.append("\n-- Section 9: storage economics (what-if) " + "-" * 24)
    lines.append(f"Dedup keeps {format_bytes(economics.unique_upload_bytes)} "
                 f"of {format_bytes(economics.upload_bytes)} uploaded "
                 f"({economics.dedup_saving_share:.1%} saved; paper: ~17%)")
    lines.append(f"Upload bytes from updates: {economics.update_share:.1%} "
                 f"(paper: 18.5%; the delta-update lever)")
    lines.append(f"Cold candidates (idle > {economics.cold_after / DAY:g}d "
                 f"at trace end): "
                 f"{format_bytes(economics.cold_candidate_bytes)} "
                 f"({economics.cold_candidate_share:.1%} of unique bytes)")
    lines.append(f"Flat hot-tier bill ${economics.monthly_flat:.2f}/month; "
                 f"age-tiered ${economics.monthly_tiered:.2f}/month "
                 f"(full sweep: python -m repro whatif)")

    lines.append("\n-- Table 1: findings, paper vs measured " + "-" * 26)
    lines.append(results["table1"].format_table())
    return "\n".join(lines)
