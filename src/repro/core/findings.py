"""Table 1: the paper's headline findings, recomputed from a trace.

Table 1 of the paper summarises the most important findings of the study and
their implications.  :func:`compute_findings` recomputes every quantitative
finding from a :class:`~repro.trace.dataset.TraceDataset` so that the
reproduction can be compared side by side with the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    anomaly,
    deduplication,
    load_balancing,
    rpc_performance,
    sessions,
    storage_workload,
    user_traffic,
    file_types,
)
from repro.trace.dataset import TraceDataset
from repro.util.units import MB

__all__ = ["Finding", "FindingsReport", "compute_findings"]


@dataclass(frozen=True)
class Finding:
    """One row of Table 1: a measured value next to the paper's value."""

    section: str
    statement: str
    paper_value: float
    measured_value: float
    unit: str = "fraction"

    @property
    def matches_direction(self) -> bool:
        """Loose shape check: measured value within a factor-2 band (or both
        sides of the same inequality for ratios around 1)."""
        paper, measured = self.paper_value, self.measured_value
        if paper == 0:
            return measured == 0
        ratio = measured / paper
        return 0.33 <= ratio <= 3.0


@dataclass(frozen=True)
class FindingsReport:
    """All recomputed Table 1 findings."""

    findings: list[Finding]

    def __iter__(self):
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_statement(self, fragment: str) -> Finding:
        """Find a finding whose statement contains ``fragment``."""
        for finding in self.findings:
            if fragment.lower() in finding.statement.lower():
                return finding
        raise KeyError(fragment)

    def format_table(self) -> str:
        """Render the findings as an aligned text table."""
        lines = [f"{'Section':<22} {'Finding':<58} {'paper':>9} {'measured':>9}"]
        for f in self.findings:
            lines.append(f"{f.section:<22} {f.statement:<58} "
                         f"{f.paper_value:>9.3f} {f.measured_value:>9.3f}")
        return "\n".join(lines)


def compute_findings(dataset: TraceDataset,
                     precomputed: dict | None = None) -> FindingsReport:
    """Recompute every quantitative Table 1 finding from ``dataset``.

    ``precomputed`` optionally supplies analysis results already produced by
    :func:`repro.core.report.full_report` (keyed by figure id) so the
    consolidated report does not run every underlying analysis twice.
    """
    pre = precomputed or {}
    findings: list[Finding] = []

    # -- Storage workload ----------------------------------------------------
    sizes = pre.get("fig4b") or file_types.file_size_analysis(dataset)
    findings.append(Finding(
        section="Storage workload",
        statement="Files smaller than 1 MByte",
        paper_value=0.90,
        measured_value=sizes.fraction_below(1 * MB)))

    updates = pre.get("updates") or storage_workload.update_traffic_share(dataset)
    findings.append(Finding(
        section="Storage workload",
        statement="Upload traffic caused by file updates",
        paper_value=0.185,
        measured_value=updates.traffic_share))

    dedup = pre.get("fig4a") or deduplication.deduplication_analysis(dataset)
    findings.append(Finding(
        section="Storage workload",
        statement="Deduplication ratio over one month",
        paper_value=0.17,
        measured_value=dedup.byte_dedup_ratio))

    attacks = pre.get("fig5")
    if attacks is None:
        attacks = anomaly.detect_anomalies(dataset, family="session")
    findings.append(Finding(
        section="Storage workload",
        statement="DDoS attacks detected in the trace",
        paper_value=3.0,
        measured_value=float(len(attacks)),
        unit="count"))

    # -- User behaviour --------------------------------------------------------
    try:
        inequality = pre.get("fig7c") or user_traffic.traffic_inequality(dataset)
    except ValueError:
        # Tiny traces may contain no legitimate transfer traffic at all.
        inequality = None
    if inequality is not None:
        findings.append(Finding(
            section="User behavior",
            statement="Traffic share of the top 1% of users",
            paper_value=0.656,
            measured_value=inequality.top_1_percent_share))
        findings.append(Finding(
            section="User behavior",
            statement="Gini coefficient of per-user traffic",
            paper_value=0.895,
            measured_value=inequality.gini))

    if "fig2c" in pre:
        rw = pre["fig2c"]
    else:
        try:
            rw = storage_workload.rw_ratio_analysis(dataset)
        except ValueError:
            rw = None
    if rw is not None:
        findings.append(Finding(
            section="User behavior",
            statement="Median hourly R/W ratio",
            paper_value=1.14,
            measured_value=rw.median,
            unit="ratio"))

    # -- Back-end performance --------------------------------------------------
    if dataset.rpc:
        points = pre.get("fig13") or rpc_performance.rpc_scatter(dataset)
        ranges = rpc_performance.class_median_ranges(points)
        from repro.trace.records import RpcClass

        if RpcClass.READ in ranges and RpcClass.CASCADE in ranges:
            fastest_read = ranges[RpcClass.READ][0]
            slowest_cascade = ranges[RpcClass.CASCADE][1]
            findings.append(Finding(
                section="Back-end performance",
                statement="Cascade/read median service-time ratio",
                # Fig. 13: cascade RPCs sit around 0.1-0.3 s against ~2-3 ms
                # for the fastest reads, i.e. roughly two orders of magnitude.
                paper_value=80.0,
                measured_value=slowest_cascade / max(fastest_read, 1e-9),
                unit="ratio"))

        shard_series = pre.get("fig14_shards") or load_balancing.shard_load(dataset)
        findings.append(Finding(
            section="Back-end performance",
            statement="Long-term load imbalance across shards (CV)",
            paper_value=0.049,
            measured_value=shard_series.long_term_imbalance()))

    session_stats = pre.get("fig16") or sessions.session_analysis(dataset)
    findings.append(Finding(
        section="Back-end performance",
        statement="Sessions that perform storage operations",
        paper_value=0.0557,
        measured_value=session_stats.active_share))
    findings.append(Finding(
        section="Back-end performance",
        statement="Sessions shorter than 8 hours",
        paper_value=0.97,
        measured_value=session_stats.share_shorter_than(8 * 3600.0)))

    return FindingsReport(findings=findings)
