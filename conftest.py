"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in offline environments where ``pip install -e .`` cannot build an
editable wheel).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Scale knobs of the shared benchmark dataset (see benchmarks/conftest).

    Registered here (the rootdir conftest) so the options are recognised no
    matter which part of the tree is being run.
    """
    parser.addoption("--repro-users", action="store", type=int, default=900,
                     help="synthetic user population for the benchmark dataset")
    parser.addoption("--repro-days", action="store", type=float, default=10.0,
                     help="synthetic trace duration in days")
    parser.addoption("--repro-seed", action="store", type=int, default=2014,
                     help="seed of the synthetic workload")
