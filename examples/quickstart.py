#!/usr/bin/env python3
"""Quickstart: generate a synthetic U1 month, replay it, print the analyses.

This is the five-minute tour of the library:

1. build a :class:`~repro.workload.config.WorkloadConfig` scaled down to a
   laptop-sized population;
2. generate the client workload and replay it through the simulated U1
   back-end (:class:`~repro.backend.cluster.U1Cluster`);
3. run every analysis of the paper and print a consolidated report.

Run with::

    python examples/quickstart.py [users] [days] [seed]
"""

from __future__ import annotations

import sys
import time

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.report import format_report
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def main(argv: list[str]) -> int:
    users = int(argv[1]) if len(argv) > 1 else 400
    days = float(argv[2]) if len(argv) > 2 else 5.0
    seed = int(argv[3]) if len(argv) > 3 else 2014

    print(f"Generating a synthetic U1 workload: {users} users over {days} days "
          f"(seed {seed}) ...")
    config = WorkloadConfig.scaled(users=users, days=days, seed=seed)
    generator = SyntheticTraceGenerator(config)

    print("Replaying the workload through the simulated back-end "
          "(6 API machines, 10 metadata shards, S3-like object store) ...")
    started = time.time()
    cluster = U1Cluster(ClusterConfig(seed=seed))
    dataset = cluster.replay(generator.client_events())
    elapsed = time.time() - started
    print(f"Replay finished in {elapsed:.1f}s: {len(dataset.storage)} storage records, "
          f"{len(dataset.rpc)} RPC records, {len(dataset.sessions)} session records.\n")

    print(format_report(dataset))

    accounting = cluster.object_store.accounting
    print("\n-- Back-end accounting " + "-" * 43)
    print(f"Objects stored: {len(cluster.object_store)}; "
          f"dedup hits: {accounting.dedup_hits}; "
          f"storage saved by dedup: {accounting.dedup_saved_bytes / 2**20:.1f} MB")
    print(f"Estimated monthly S3 storage bill at this scale: "
          f"${accounting.monthly_cost_estimate():.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
