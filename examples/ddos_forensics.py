#!/usr/bin/env python3
"""DDoS forensics: detect and characterise abuse episodes in a U1 trace.

Section 5.4 of the paper reports three DDoS attacks in the measurement month,
each sharing a single account's credentials across thousands of clients to
distribute illegal content.  This example:

1. generates a month-like synthetic trace containing the attack episodes;
2. detects anomalous windows from per-hour request rates (the same signal
   Fig. 5 plots);
3. attributes each window to the responsible account by ranking per-user
   request counts inside the window;
4. simulates the countermeasure the U1 engineers applied manually — banning
   the offending account in the authentication service.

Run with::

    python examples/ddos_forensics.py
"""

from __future__ import annotations

from collections import Counter

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.anomaly import attack_amplification, detect_anomalies
from repro.util.units import HOUR
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def main() -> int:
    config = WorkloadConfig.scaled(users=600, days=10, seed=123)
    cluster = U1Cluster(ClusterConfig(seed=123))
    print("Simulating 10 days of U1 activity including abuse episodes ...")
    dataset = cluster.replay(SyntheticTraceGenerator(config).client_events())

    print("\nScanning per-hour session request rates for anomalies ...")
    windows = detect_anomalies(dataset, family="session", threshold=4.0)
    amplification = attack_amplification(dataset)
    print(f"Detected {len(windows)} anomalous window(s); peak amplification: "
          f"session {amplification['session']:.1f}x, auth {amplification['auth']:.1f}x, "
          f"storage {amplification['storage']:.1f}x (paper: 5-15x / up to 245x).")

    start, _ = dataset.time_span()
    for index, window in enumerate(windows, start=1):
        subset = dataset.filter_time(window.start, window.end)
        per_user = Counter(r.user_id for r in subset.storage)
        per_user.update(r.user_id for r in subset.sessions)
        suspect, requests = per_user.most_common(1)[0]
        total = sum(per_user.values())
        truth = {r.user_id for r in subset.storage if r.caused_by_attack}
        print(f"\nWindow {index}: day {(window.start - start) / 86400:.1f}, "
              f"duration {window.duration / HOUR:.1f} h, "
              f"{window.amplification:.1f}x over baseline")
        print(f"  dominant account: user {suspect} with {requests}/{total} requests "
              f"({requests / total:.0%})")
        print(f"  ground-truth attacker ids in window: {sorted(truth) or 'none'}")
        if suspect in truth:
            print("  -> attribution matches the injected attacker; banning account")
            cluster.auth.ban_user(suspect)
        else:
            print("  -> attribution does not match an injected attacker "
                  "(legitimate hot spot)")

    banned = [uid for uid in dataset.user_ids() if cluster.auth.is_banned(uid)]
    print(f"\nAccounts banned in the authentication service: {banned}")
    print("In production this reaction was manual; the paper calls for "
          "automatic countermeasures like this one.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
