#!/usr/bin/env python3
"""Storage cost optimisation: dedup, delta updates and cold-data tiering.

Section 9 of the paper argues that understanding user behaviour is the key to
cutting a Personal Cloud's operating costs: file-level deduplication would
save ~17 % of storage, delta updates would remove most of the 18.5 % of
upload traffic caused by updates, and warm/cold tiering would absorb rarely
accessed data.  This example quantifies all of them on the same synthetic
workload — but, unlike its first incarnation (which re-replayed the entire
back-end once per configuration, three full replays), it replays **once**
and answers every what-if with the offline policy sweep
(:mod:`repro.whatif`): cheap columnar passes over the replayed trace,
including a hot/cold tiering variant no full replay ever covered.

Run with::

    python examples/storage_cost_optimization.py
"""

from __future__ import annotations

import time

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.file_dependencies import dying_files
from repro.core.storage_workload import update_traffic_share
from repro.util.units import DAY, GB
from repro.whatif.sweep import run_sweep
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def main() -> int:
    config = WorkloadConfig.scaled(users=500, days=7, seed=31)
    print(f"Workload: {config.n_users} users over {config.duration_days:.0f} days\n")

    # ONE replay through the real back-end (the fused pipeline)...
    cluster = U1Cluster(ClusterConfig(seed=31))
    started = time.perf_counter()
    dataset = cluster.replay_plan(SyntheticTraceGenerator(config).plan())
    replay_seconds = time.perf_counter() - started
    baseline_acc = cluster.object_store.accounting

    # ... then every what-if as an offline columnar pass over its trace.
    sweep = run_sweep(dataset,
                      cost_model=cluster.config.cost_model,
                      chunk_bytes=cluster.config.multipart_chunk_bytes,
                      end_time=cluster.last_replay_stats["timeline_end"],
                      tier_age=1 * DAY)
    baseline = sweep.baseline.accounting
    nodedup = sweep.outcome("no-dedup").accounting
    delta = sweep.outcome("delta-updates").accounting
    tiered = sweep.outcome("tier-age").accounting

    updates = update_traffic_share(dataset)
    dedup_saving = 1 - baseline.bytes_stored / max(nodedup.bytes_stored, 1)
    delta_saving = 1 - delta.bytes_uploaded / max(baseline.bytes_uploaded, 1)

    print("File-level cross-user deduplication (enabled in U1):")
    print(f"  bytes stored with dedup:    {baseline.bytes_stored / GB:8.2f} GB")
    print(f"  bytes stored without dedup: {nodedup.bytes_stored / GB:8.2f} GB")
    print(f"  storage saved:              {dedup_saving:8.1%}   (paper: ~17%)\n")

    print("Delta updates (NOT implemented by the U1 client):")
    print(f"  upload traffic from updates: {updates.traffic_share:8.1%}   (paper: 18.5%)")
    print(f"  upload bytes, full re-upload: {baseline.bytes_uploaded / GB:7.2f} GB")
    print(f"  upload bytes, delta updates:  {delta.bytes_uploaded / GB:7.2f} GB")
    print(f"  upload traffic saved:         {delta_saving:7.1%}\n")

    dying = dying_files(dataset, idle_threshold=1 * DAY)
    print("Warm/cold tiering (Amazon Glacier / f4-style tiers):")
    print(f"  files idle for >1 day before deletion: {dying.dying_files} "
          f"({dying.share_of_all_files:.1%} of observed files; paper: ~9%)")
    print(f"  cold-resident bytes after 1-day-idle tiering: "
          f"{tiered.cold_bytes / GB:.2f} GB "
          f"({tiered.cold_bytes / max(tiered.bytes_stored, 1):.1%} of stored)")
    print(f"  downloads still served hot: {tiered.hot_hit_rate:.1%}\n")

    print("Monthly bill at this (laptop) scale, by policy:")
    print(sweep.format_table())
    print("(U1's real bill was ~$20k/month; savings scale with the same ratios.)")
    print(f"\nOne replay {replay_seconds:.2f}s + offline sweep of "
          f"{len(sweep.outcomes)} policies {sweep.seconds:.2f}s — the "
          f"historical version paid three full replays for fewer answers.")
    # The live baseline accounting and the offline baseline pass agree at
    # replay_shards=1 exactly; at the default shard count they drift by the
    # documented per-shard dedup caveat — surface both for honesty.
    drift = (baseline.bytes_stored - baseline_acc.bytes_stored) \
        / max(baseline_acc.bytes_stored, 1)
    print(f"(offline vs live baseline stored-bytes drift at "
          f"replay_shards={cluster.config.effective_replay_shards()}: "
          f"{drift:+.1%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
