#!/usr/bin/env python3
"""Storage cost optimisation: dedup, delta updates and cold-data tiering.

Section 9 of the paper argues that understanding user behaviour is the key to
cutting a Personal Cloud's operating costs: file-level deduplication would
save ~17 % of storage, delta updates would remove most of the 18.5 % of
upload traffic caused by updates, and warm/cold tiering would absorb rarely
accessed data.  This example quantifies all three on the same synthetic
workload by replaying it through differently configured back-ends.

Run with::

    python examples/storage_cost_optimization.py
"""

from __future__ import annotations

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.file_dependencies import dying_files
from repro.core.storage_workload import update_traffic_share
from repro.util.units import DAY, GB
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def replay(scripts, **cluster_overrides):
    cluster = U1Cluster(ClusterConfig(seed=31, **cluster_overrides))
    dataset = cluster.replay(scripts)
    return cluster, dataset


def main() -> int:
    config = WorkloadConfig.scaled(users=500, days=7, seed=31)
    scripts = SyntheticTraceGenerator(config).client_events()
    print(f"Workload: {config.n_users} users over {config.duration_days:.0f} days\n")

    # Baseline: the real U1 configuration (dedup on, no delta updates).
    baseline_cluster, baseline = replay(scripts)
    baseline_acc = baseline_cluster.object_store.accounting

    # Variant 1: no cross-user dedup.
    nodedup_cluster, _ = replay(scripts, dedup_enabled=False)
    nodedup_acc = nodedup_cluster.object_store.accounting

    # Variant 2: delta updates enabled in the client/back-end.
    delta_cluster, _ = replay(scripts, delta_updates_enabled=True)
    delta_acc = delta_cluster.object_store.accounting

    updates = update_traffic_share(baseline)
    dedup_saving = 1 - baseline_acc.bytes_stored / max(nodedup_acc.bytes_stored, 1)
    delta_saving = 1 - delta_acc.bytes_uploaded / max(baseline_acc.bytes_uploaded, 1)

    print("File-level cross-user deduplication (enabled in U1):")
    print(f"  bytes stored with dedup:    {baseline_acc.bytes_stored / GB:8.2f} GB")
    print(f"  bytes stored without dedup: {nodedup_acc.bytes_stored / GB:8.2f} GB")
    print(f"  storage saved:              {dedup_saving:8.1%}   (paper: ~17%)\n")

    print("Delta updates (NOT implemented by the U1 client):")
    print(f"  upload traffic from updates: {updates.traffic_share:8.1%}   (paper: 18.5%)")
    print(f"  upload bytes, full re-upload: {baseline_acc.bytes_uploaded / GB:7.2f} GB")
    print(f"  upload bytes, delta updates:  {delta_acc.bytes_uploaded / GB:7.2f} GB")
    print(f"  upload traffic saved:         {delta_saving:7.1%}\n")

    dying = dying_files(baseline, idle_threshold=1 * DAY)
    print("Warm/cold data (candidates for Amazon Glacier / f4-style tiers):")
    print(f"  files idle for >1 day before deletion: {dying.dying_files} "
          f"({dying.share_of_all_files:.1%} of observed files; paper: ~9%)\n")

    bill_baseline = baseline_acc.monthly_cost_estimate()
    bill_nodedup = nodedup_acc.monthly_cost_estimate()
    print("Back-of-the-envelope monthly S3 bill at this (laptop) scale:")
    print(f"  with dedup:    ${bill_baseline:.2f}")
    print(f"  without dedup: ${bill_nodedup:.2f}")
    print("(U1's real bill was ~$20k/month; savings scale with the same ratios.)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
