#!/usr/bin/env python3
"""Fault injection and offline mitigation sweeps: one bad day, six answers.

The paper's operational sections describe the failure modes a Personal
Cloud back-end actually lives with: slow or flapping API processes, lossy
links between the proxies and the metadata cluster, shards pinned
read-only during maintenance, and storage nodes dropping out.  This
example scripts one such "incident day" as a declarative, seed-determinis-
tic :class:`~repro.faults.spec.FaultPlan`, replays the workload through
the real back-end **once** with the faults injected, and then answers
"what should the operator have done?" entirely offline: the mitigation
sweep (:mod:`repro.faults.sweep`) re-resolves every faulted request under
six policies — do-nothing, two retry budgets, request hedging,
drain-and-repair, disable-and-continue — for a fraction of the cost of a
single replay.

The do-nothing and retry policies are exact (they pin the live replay's
fault counters counter-for-counter, a property the test-suite enforces);
hedge/drain/disable are what-if estimates built from the same
deterministic fault decisions.

Run with::

    python examples/fault_mitigation_sweep.py
"""

from __future__ import annotations

import time

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.faults.spec import (
    AuthOutage,
    FaultPlan,
    LossyLink,
    ReadOnlyShard,
    StorageNodeOutage,
    flapping,
)
from repro.faults.sweep import run_fault_sweep
from repro.util.units import DAY
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def incident_day(start: float, span: float, seed: int) -> FaultPlan:
    """A hand-written incident timeline (quarters of the trace span)."""
    q = span / 4.0
    return FaultPlan(faults=(
        # An API worker flaps for the first half: degraded for half of
        # every cycle, serving RPCs 4x slower while degraded.  (Worker 1
        # is one of the busiest under this diurnal workload, so the
        # degradation lands on real traffic.)
        *flapping(start + 0.25 * q, start + 2.0 * q, period=q / 4.0,
                  process_index=1, inflation=4.0),
        # A lossy link drops 8% of requests through the middle of the day.
        LossyLink(start + 1.5 * q, start + 2.5 * q, failure_rate=0.08),
        # Metadata shard 0 goes read-only for a maintenance window.
        ReadOnlyShard(start + 1.75 * q, start + 2.25 * q, shard_id=0),
        # One of four storage nodes dies with no failover configured.
        StorageNodeOutage(start + 2.0 * q, start + 3.0 * q, node_index=1,
                          n_nodes=4, failover=False),
        # The auth service rejects every new session for a short outage.
        AuthOutage(start + 3.0 * q, start + 3.25 * q),
    ), seed=seed)


def main() -> int:
    config = WorkloadConfig.scaled(users=400, days=3, seed=23)
    span = config.duration_days * DAY
    plan = incident_day(config.start_time, span, seed=23)
    print(f"Workload: {config.n_users} users over "
          f"{config.duration_days:.0f} days, {len(plan.faults)} fault "
          f"windows scheduled\n")

    # ONE faulted replay through the real back-end.  The plan is compiled
    # once in the planning pass, so the same trace comes out bit-identical
    # at any --jobs; mitigation stays at the do-nothing default because the
    # unmitigated trace is the complete request log every policy can be
    # re-evaluated against.
    cluster = U1Cluster(ClusterConfig(seed=23, faults=plan))
    started = time.perf_counter()
    dataset = cluster.replay_plan(SyntheticTraceGenerator(config).plan())
    replay_seconds = time.perf_counter() - started

    live = cluster.fault_accounting
    print("What the users saw (live, unmitigated):")
    print(f"  requests hit by faults:  {live.requests_faulted}")
    print(f"  user-visible errors:     {live.user_visible_errors} "
          f"(incl. {live.auth_outage_failures} auth denials)")
    print(f"  degraded RPCs:           {live.degraded_rpcs} "
          f"(+{live.degraded_extra_seconds:.1f}s of service time)")
    per_shard = cluster.metadata_store.write_rejections_per_shard()
    print(f"  read-only rejections by metadata shard: {per_shard}\n")

    # ... then every mitigation as an offline pass over the faulted trace.
    sweep = run_fault_sweep(dataset, cluster.fault_schedule,
                            config=cluster.config,
                            detection_seconds=span / 96)  # ~30 min at 2 days
    print("What each mitigation would have made of it (offline):")
    print(sweep.format_table())

    best = sweep.best
    base = sweep.baseline
    print(f"\nBest policy: {best.policy.name} — error rate "
          f"{base.error_rate:.3%} -> {best.error_rate:.3%}, p99.9 "
          f"inflation {base.p999_inflation:.2f}x -> "
          f"{best.p999_inflation:.2f}x at +{best.ops_overhead:.3f} extra "
          f"attempts per request.")
    print(f"One faulted replay {replay_seconds:.2f}s + "
          f"{len(sweep.outcomes)}-policy sweep {sweep.seconds:.2f}s "
          f"(vs ~{len(sweep.outcomes)}x the replay to test each live).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
