#!/usr/bin/env python3
"""Capacity planning: how back-end load scales with the user population.

The paper's headline operational observation is that a 20-machine database
cluster (10 shards) served 1.29 M users without congestion, because only a
tiny fraction of the user population is active at any time.  This example
sweeps the population size, replays each workload through the simulated
back-end and reports the resulting RPC volume, per-shard load and object
store footprint — the numbers an operator would use to size a deployment.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

import time

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.load_balancing import shard_load
from repro.core.sessions import session_analysis
from repro.core.user_activity import online_active_users
from repro.util.units import GB, MINUTE
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


POPULATIONS = (100, 300, 600, 1200)
DAYS = 4.0
SEED = 7


def run_one(users: int) -> dict:
    config = WorkloadConfig.scaled(users=users, days=DAYS, seed=SEED)
    cluster = U1Cluster(ClusterConfig(seed=SEED))
    started = time.time()
    dataset = cluster.replay(SyntheticTraceGenerator(config).client_events())
    elapsed = time.time() - started

    shards = shard_load(dataset, bin_width=MINUTE, n_shards=10)
    sessions = session_analysis(dataset)
    activity = online_active_users(dataset)
    peak_online = float(activity.online.max())
    return {
        "users": users,
        "rpc_calls": len(dataset.rpc),
        "storage_ops": len(dataset.storage),
        "peak_online_users": peak_online,
        "active_session_share": sessions.active_share,
        "peak_shard_rpm": float(shards.counts.sum(axis=0).max()),
        "stored_gb": cluster.object_store.accounting.bytes_stored / GB,
        "sim_seconds": elapsed,
    }


def main() -> int:
    print(f"{'users':>7} {'storage ops':>12} {'RPC calls':>10} {'peak online':>12} "
          f"{'active sess.':>12} {'peak shard rpm':>15} {'stored GB':>10} {'sim s':>7}")
    results = []
    for users in POPULATIONS:
        row = run_one(users)
        results.append(row)
        print(f"{row['users']:>7} {row['storage_ops']:>12} {row['rpc_calls']:>10} "
              f"{row['peak_online_users']:>12.0f} {row['active_session_share']:>12.3f} "
              f"{row['peak_shard_rpm']:>15.0f} {row['stored_gb']:>10.2f} "
              f"{row['sim_seconds']:>7.1f}")

    first, last = results[0], results[-1]
    growth = last["users"] / first["users"]
    rpc_growth = last["rpc_calls"] / max(first["rpc_calls"], 1)
    print(f"\nPopulation grew {growth:.0f}x; RPC volume grew {rpc_growth:.1f}x "
          f"(roughly linear, as the user-per-shard model predicts).")
    print("Active sessions stay a small, roughly constant fraction of all "
          "sessions — the reason a modest metadata cluster can serve a very "
          "large user population.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
