#!/usr/bin/env python3
"""Trace release pipeline: log, anonymise, split into logfiles, re-analyse.

The released U1 dataset was built by capturing per-process logfiles, removing
sensitive information and merging 30 days of activity into one trace.  This
example reproduces that pipeline end to end and verifies that the analyses of
the paper are unchanged by anonymisation:

1. simulate the back-end and collect its trace;
2. anonymise it (keyed pseudonyms for users/sessions/nodes/hashes);
3. split it into ``production-<machine>-<process>-<date>`` CSV logfiles;
4. read the logfiles back, re-run the analyses and compare.

Run with::

    python examples/trace_release_pipeline.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.backend.cluster import ClusterConfig, U1Cluster
from repro.core.deduplication import deduplication_analysis
from repro.core.sessions import session_analysis
from repro.core.user_traffic import traffic_inequality
from repro.trace.anonymize import Anonymizer
from repro.trace.logfile import read_trace_directory, write_trace_directory
from repro.trace.stats import summarize
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticTraceGenerator


def main(argv: list[str]) -> int:
    output_dir = Path(argv[1]) if len(argv) > 1 else Path(tempfile.mkdtemp(
        prefix="u1-trace-"))

    config = WorkloadConfig.scaled(users=250, days=3, seed=77)
    cluster = U1Cluster(ClusterConfig(seed=77))
    print("Simulating the back-end to collect raw logs ...")
    raw = cluster.replay(SyntheticTraceGenerator(config).client_events())

    print("Anonymising the trace (keyed pseudonyms, extensions preserved) ...")
    anonymous = Anonymizer(secret=b"release-2014").anonymize(raw)

    print(f"Writing per-process logfiles under {output_dir} ...")
    paths = write_trace_directory(output_dir, anonymous)
    print(f"  wrote {len(paths)} logfiles, e.g. {paths[0].name}")

    print("Reading the released logfiles back and re-running the analyses ...")
    released = read_trace_directory(output_dir)

    raw_summary = summarize(raw)
    released_summary = summarize(released)
    print("\nTable 3 on the raw trace vs the released trace:")
    for (label, raw_value), (_, released_value) in zip(raw_summary.rows(),
                                                       released_summary.rows()):
        print(f"  {label:<26} {raw_value:>14}  |  {released_value:>14}")

    checks = [
        ("dedup ratio", deduplication_analysis(raw).byte_dedup_ratio,
         deduplication_analysis(released).byte_dedup_ratio),
        ("traffic Gini", traffic_inequality(raw).gini,
         traffic_inequality(released).gini),
        ("active session share", session_analysis(raw).active_share,
         session_analysis(released).active_share),
    ]
    print("\nAnalyses are insensitive to anonymisation:")
    for label, raw_value, released_value in checks:
        marker = "OK " if abs(raw_value - released_value) < 1e-9 else "DIFF"
        print(f"  [{marker}] {label:<22} raw={raw_value:.4f} released={released_value:.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
